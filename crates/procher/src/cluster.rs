//! The parent: spawns real child processes, applies a chaos schedule
//! through the proxy, and audits merged real-socket telemetry.
//!
//! [`run_cluster`] is the real-socket analogue of
//! [`raincore_sim::run_chaos`]: the same [`raincore_sim::ChaosEvent`]
//! schedule vocabulary, the same belief-gated quietness rules, and the
//! same liveness oracles — but the "cluster" is N OS processes over UDP
//! and the audit view is rebuilt each tick from the children's export
//! files instead of read out of simulator memory.
//!
//! Fault mapping (1 NIC per node):
//!
//! | schedule fault        | real-world action                           |
//! |-----------------------|---------------------------------------------|
//! | `crash nK`            | `SIGKILL` the child process                 |
//! | `restart nK`          | respawn as a token-less joiner, +1 incarnation |
//! | `link-down/up a b`    | pairwise cut in the proxy                   |
//! | `nic-down/up nK:0`    | whole-node unplug in the proxy              |
//! | `partition ...`       | group-based cut in the proxy                |
//! | `heal`                | clear cuts + partition (unplugs persist)    |
//! | `dup/reorder/jitter`  | proxy injection dials                       |
//!
//! Safety auditors quantified over a single instant (token uniqueness,
//! unique 911 winner) are deliberately *not* run here: per-node exports
//! are written on independent clocks, so the merged view is time-skewed
//! and those claims would false-positive. The skew-tolerant checks run
//! instead — see the crate docs and `DESIGN.md` §10.

use crate::child::StartKind;
use crate::export::{merge_export_journals, ChildExport};
use crate::proxy::{LossProxy, ProxyDials, ProxyStats};
use raincore_sim::{
    AuditView, ChaosEvent, ChaosFault, LivenessOracles, MembershipAuditor, NodeStatus,
    OrderAuditor, StatusView,
};
use raincore_types::{NodeId, Time};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::io::BufRead;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// How every child starts at tick 0.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scenario {
    /// All nodes found one group with the full ring.
    Founding,
    /// All nodes start as singleton groups and merge via discovery.
    Isolated,
}

/// Configuration of one harness run.
#[derive(Clone, Debug)]
pub struct ProcConfig {
    /// Cluster size.
    pub nodes: u32,
    /// Seed for the proxy's packet-fate RNG.
    pub seed: u64,
    /// Start scenario.
    pub scenario: Scenario,
    /// Parent tick length in milliseconds (schedule ticks are parent
    /// ticks).
    pub tick_ms: u64,
    /// Schedule horizon in ticks — the run soaks at least this long.
    pub ticks: u64,
    /// Ticks after the last fault before the view counts as quiet.
    pub grace_ticks: u64,
    /// Token-progress bound for the liveness oracle, in quiet ticks.
    pub token_bound_ticks: u64,
    /// Convergence bound, in quiet ticks.
    pub conv_bound_ticks: u64,
    /// Consecutive converged ticks required to finish.
    pub post_ticks: u64,
    /// Baseline injection dials (schedule `dup`/`reorder`/`jitter`
    /// faults override individual dials mid-run).
    pub dials: ProxyDials,
    /// Agreed multicasts each child originates.
    pub workload_count: u32,
    /// Pacing between originations, milliseconds.
    pub workload_period_ms: u64,
    /// Out-of-band bulk threshold handed to every child's session config
    /// (bytes; 0 keeps the OOB path off). With it on, odd workload
    /// multicasts are sized past the threshold so real bulk frames cross
    /// the proxy.
    pub bulk_threshold: usize,
    /// Child export period, milliseconds.
    pub export_ms: u64,
    /// Directory for export/ctl files and the run report.
    pub out_dir: PathBuf,
    /// Path of the `procher` binary to spawn children from.
    pub child_exe: PathBuf,
}

impl ProcConfig {
    /// Defaults sized like the simulator chaos defaults, scaled to the
    /// 10 ms parent tick: 1.5 s grace, 3 s token bound, 15 s convergence
    /// bound, 0.5 s converged tail.
    pub fn new(child_exe: PathBuf, out_dir: PathBuf) -> ProcConfig {
        ProcConfig {
            nodes: 4,
            seed: 1,
            scenario: Scenario::Founding,
            tick_ms: 10,
            ticks: 300,
            grace_ticks: 150,
            token_bound_ticks: 300,
            conv_bound_ticks: 1500,
            post_ticks: 50,
            dials: ProxyDials::default(),
            workload_count: 3,
            workload_period_ms: 40,
            bulk_threshold: 0,
            export_ms: 50,
            out_dir,
            child_exe,
        }
    }
}

/// Outcome of one harness run.
#[derive(Debug)]
pub struct ProcReport {
    /// First oracle/auditor violation, as `(tick, reason)`.
    pub violation: Option<(u64, String)>,
    /// True if the run ended quiet and converged (and, on crash-free
    /// workload runs, with every delivery accounted for).
    pub converged: bool,
    /// Ticks executed, including the convergence tail.
    pub ticks_run: u64,
    /// Faults applied from the schedule.
    pub faults_applied: u64,
    /// Export documents parsed.
    pub exports_parsed: u64,
    /// Final per-node status from the last export of each child.
    pub per_node: BTreeMap<NodeId, NodeStatus>,
    /// Sum of per-node 911 regenerations at the end of the run.
    pub total_regenerations: u64,
    /// Proxy traffic counters.
    pub proxy: ProxyStats,
    /// On non-convergence: what blocked the streak on the last tick that
    /// reset it (diagnostic, not an oracle verdict).
    pub last_block: Option<String>,
}

/// The parent's belief about standing connectivity damage — the
/// real-socket mirror of the chaos engine's `NetBelief`, specialized to
/// one NIC per node. Injection dials never count as damage: oracles must
/// hold *under* loss, not merely after it stops.
#[derive(Debug, Default)]
struct Belief {
    pairs: BTreeSet<(NodeId, NodeId)>,
    nodes_down: BTreeSet<NodeId>,
    partitioned: bool,
}

impl Belief {
    fn note(&mut self, fault: &ChaosFault) {
        match fault {
            ChaosFault::LinkDown(a, b) => {
                let key = if a <= b { (*a, *b) } else { (*b, *a) };
                self.pairs.insert(key);
            }
            ChaosFault::LinkUp(a, b) => {
                let key = if a <= b { (*a, *b) } else { (*b, *a) };
                self.pairs.remove(&key);
            }
            ChaosFault::NicDown(addr) => {
                self.nodes_down.insert(addr.node);
            }
            ChaosFault::NicUp(addr) => {
                self.nodes_down.remove(&addr.node);
            }
            ChaosFault::Partition(_) => self.partitioned = true,
            ChaosFault::Heal => {
                self.pairs.clear();
                self.partitioned = false;
            }
            // Crashes change the live set, not connectivity; dials never
            // sever anything.
            ChaosFault::Crash(_)
            | ChaosFault::Restart(_)
            | ChaosFault::Duplicate(_)
            | ChaosFault::Reorder(_)
            | ChaosFault::Jitter(_)
            | ChaosFault::BulkLoss(_) => {}
        }
    }

    fn blocked(&self) -> bool {
        self.partitioned || !self.pairs.is_empty() || !self.nodes_down.is_empty()
    }
}

struct ChildProc {
    proc: Child,
    incarnation: u32,
    alive: bool,
}

struct Harness<'a> {
    cfg: &'a ProcConfig,
    proxy: LossProxy,
    children: BTreeMap<NodeId, ChildProc>,
    /// Cache of the last successfully parsed export per node: raw text
    /// (to skip reparsing unchanged files) and the extracted status.
    cache: HashMap<NodeId, (String, u32, NodeStatus)>,
    exports_parsed: u64,
    started: Instant,
}

impl Harness<'_> {
    fn export_path(&self, id: NodeId) -> PathBuf {
        self.cfg.out_dir.join(format!("node-{}.export", id.0))
    }

    fn ctl_path(&self, id: NodeId) -> PathBuf {
        self.cfg.out_dir.join(format!("node-{}.ctl", id.0))
    }

    fn spawn_child(
        &mut self,
        id: NodeId,
        incarnation: u32,
        start: StartKind,
    ) -> std::io::Result<()> {
        let peers: Vec<String> = (0..self.cfg.nodes)
            .map(NodeId)
            .filter_map(|p| self.proxy.proxy_addr(p).map(|a| format!("{}={a}", p.0)))
            .collect();
        let start_s = match start {
            StartKind::Founding => "founding",
            StartKind::Isolated => "isolated",
            StartKind::Joining => "joining",
        };
        // A fresh incarnation must not inherit the previous life's export
        // or ctl state.
        let _ = std::fs::remove_file(self.export_path(id));
        std::fs::write(self.ctl_path(id), "run")?;
        let mut proc = Command::new(&self.cfg.child_exe)
            .arg("--child")
            .args(["--node", &id.0.to_string()])
            .args(["--nodes", &self.cfg.nodes.to_string()])
            .args(["--incarnation", &incarnation.to_string()])
            .args(["--start", start_s])
            .args(["--peers", &peers.join(",")])
            .args(["--export", &self.export_path(id).display().to_string()])
            .args(["--ctl", &self.ctl_path(id).display().to_string()])
            .args(["--export-ms", &self.cfg.export_ms.to_string()])
            .args(["--workload-count", &self.cfg.workload_count.to_string()])
            .args([
                "--workload-period-ms",
                &self.cfg.workload_period_ms.to_string(),
            ])
            .args(["--bulk-threshold", &self.cfg.bulk_threshold.to_string()])
            .stdout(Stdio::piped())
            .spawn()?;
        let stdout = proc.stdout.take().expect("piped stdout");
        let mut lines = std::io::BufReader::new(stdout).lines();
        let port_line = lines
            .next()
            .transpose()?
            .ok_or_else(|| std::io::Error::other(format!("child {id} exited before PORT")))?;
        let saddr = port_line
            .strip_prefix("PORT ")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| std::io::Error::other(format!("child {id}: bad line `{port_line}`")))?;
        let ready = lines.next().transpose()?;
        if ready.as_deref() != Some("READY") {
            return Err(std::io::Error::other(format!("child {id} never got READY")));
        }
        // The reader thread for the child's stdout is no longer needed;
        // children print nothing after READY.
        drop(lines);
        self.proxy.set_dest(id, saddr);
        self.cache.remove(&id);
        self.children.insert(
            id,
            ChildProc {
                proc,
                incarnation,
                alive: true,
            },
        );
        Ok(())
    }

    fn kill_child(&mut self, id: NodeId) {
        if let Some(c) = self.children.get_mut(&id) {
            let _ = c.proc.kill();
            let _ = c.proc.wait();
            c.alive = false;
        }
    }

    /// Reaps children that exited on their own; returns their ids.
    fn reap(&mut self) -> Vec<NodeId> {
        let mut gone = Vec::new();
        for (&id, c) in self.children.iter_mut() {
            if c.alive && c.proc.try_wait().ok().flatten().is_some() {
                c.alive = false;
                gone.push(id);
            }
        }
        gone
    }

    /// Rebuilds the audit view from the children's current export files.
    /// Every configured node appears; a node with no current-incarnation
    /// export (dead, restarting, or not yet exporting) audits as dead.
    fn status_view(&mut self) -> StatusView {
        let mut view = StatusView::new(Time(self.started.elapsed().as_nanos() as u64));
        for i in 0..self.cfg.nodes {
            let id = NodeId(i);
            let child = self.children.get(&id);
            let raw = std::fs::read_to_string(self.export_path(id)).unwrap_or_default();
            let mut status = NodeStatus::default();
            if !raw.is_empty() {
                let cached = self.cache.get(&id).filter(|(prev, _, _)| *prev == raw);
                let parsed: Option<(u32, NodeStatus)> = match cached {
                    Some((_, inc, st)) => Some((*inc, st.clone())),
                    None => match ChildExport::parse_status(&raw) {
                        Ok(exp) => {
                            self.exports_parsed += 1;
                            let st = exp.node_status();
                            let inc = exp.incarnation;
                            self.cache.insert(id, (raw.clone(), inc, st.clone()));
                            Some((inc, st))
                        }
                        // A torn read (rename midway) fixes itself next
                        // tick; keep the previous status meanwhile.
                        Err(_) => self.cache.get(&id).map(|(_, inc, st)| (*inc, st.clone())),
                    },
                };
                if let Some((inc, st)) = parsed {
                    let current = child.is_some_and(|c| c.alive && c.incarnation == inc);
                    status = st;
                    status.live &= current;
                }
            }
            if !child.is_some_and(|c| c.alive) {
                status.live = false;
            }
            view.insert(id, status);
        }
        view
    }

    fn shutdown(&mut self) {
        for i in 0..self.cfg.nodes {
            let id = NodeId(i);
            if self.children.get(&id).is_some_and(|c| c.alive) {
                let _ = std::fs::write(self.ctl_path(id), "leave");
            }
        }
        let deadline = Instant::now() + Duration::from_secs(3);
        while Instant::now() < deadline {
            if self.reap().is_empty() && self.children.values().all(|c| !c.alive) {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        for i in 0..self.cfg.nodes {
            self.kill_child(NodeId(i));
        }
    }
}

impl Drop for Harness<'_> {
    fn drop(&mut self) {
        // Never leak child processes, even on an error path.
        let ids: Vec<NodeId> = self.children.keys().copied().collect();
        for id in ids {
            self.kill_child(id);
        }
    }
}

/// Writes the merged cross-node trace artifacts into `out_dir` from
/// whatever export/flight files the children left behind:
/// `journal.json` (the `tracectl` input format) and `waterfall.txt`
/// (the rendered causal waterfall plus every child's flight-recorder
/// dump). Called on failed runs so CI uploads a ready post-mortem; also
/// usable on any finished out_dir.
pub fn write_trace_artifacts(out_dir: &std::path::Path, nodes: u32) -> std::io::Result<()> {
    let mut exports = Vec::new();
    for i in 0..nodes {
        if let Ok(raw) = std::fs::read_to_string(out_dir.join(format!("node-{i}.export"))) {
            if let Ok(exp) = ChildExport::parse(&raw) {
                exports.push(exp);
            }
        }
    }
    let events = merge_export_journals(&exports);
    std::fs::write(
        out_dir.join("journal.json"),
        raincore_obs::render_events_json(&events),
    )?;
    let mut text = raincore_obs::render_waterfall(&events, &raincore_obs::WaterfallOpts::default());
    for i in 0..nodes {
        if let Ok(flight) = std::fs::read_to_string(out_dir.join(format!("node-{i}.flight"))) {
            text.push_str(&format!("--- node {i} flight recorder ---\n{flight}"));
        }
    }
    std::fs::write(out_dir.join("waterfall.txt"), text)
}

fn first_violation(
    membership: &MembershipAuditor,
    order: Option<&OrderAuditor>,
    oracles: &LivenessOracles,
) -> Option<String> {
    if let Some((t, viewer, x)) = membership.violations.first() {
        return Some(format!(
            "membership resurrection at {t}: {viewer} saw purged node {x}"
        ));
    }
    if let Some((t, a, b)) = order.and_then(|o| o.violations.first()) {
        return Some(format!(
            "delivery order diverged at {t}: nodes {a} and {b} disagree"
        ));
    }
    oracles.first_violation().map(|(_, reason)| reason)
}

/// Runs `schedule` over a fresh process cluster built from `cfg`.
///
/// Blocks until the run converges, violates, or exhausts its bounded
/// budget; children are always torn down before returning. Export files
/// and `report.txt` stay in `cfg.out_dir` as the run's artifacts.
pub fn run_cluster(cfg: &ProcConfig, schedule: &[ChaosEvent]) -> std::io::Result<ProcReport> {
    std::fs::create_dir_all(&cfg.out_dir)?;
    let ids: Vec<NodeId> = (0..cfg.nodes).map(NodeId).collect();
    let proxy = LossProxy::bind(&ids, cfg.seed)?;
    proxy.set_dials(cfg.dials);
    let mut h = Harness {
        cfg,
        proxy,
        children: BTreeMap::new(),
        cache: HashMap::new(),
        exports_parsed: 0,
        started: Instant::now(),
    };
    let start_kind = match cfg.scenario {
        Scenario::Founding => StartKind::Founding,
        Scenario::Isolated => StartKind::Isolated,
    };
    for &id in &ids {
        h.spawn_child(id, 0, start_kind)?;
    }

    let mut ordered: Vec<&ChaosEvent> = schedule.iter().collect();
    ordered.sort_by_key(|e| e.tick);
    let has_churn = ordered
        .iter()
        .any(|e| matches!(e.fault, ChaosFault::Crash(_) | ChaosFault::Restart(_)));
    // Per-node delivery logs reset on restart, so cross-node prefix
    // agreement is only a whole-run claim on churn-free schedules.
    let mut order = (!has_churn).then(OrderAuditor::new);
    let mut membership = MembershipAuditor::with_dwell(20);
    let mut oracles = LivenessOracles::new(cfg.token_bound_ticks, cfg.conv_bound_ticks);
    let mut belief = Belief::default();
    let mut dials = cfg.dials;
    let mut last_fault: Option<u64> = None;
    let mut last_link_fault: Option<u64> = None;
    let mut was_link_calm = true;
    let mut faults_applied = 0u64;
    let mut converged_streak = 0u64;
    let mut last_block: Option<String> = None;
    let mut violation: Option<(u64, String)> = None;
    let mut idx = 0usize;
    let expect_deliveries = if cfg.workload_count > 0 && !has_churn {
        Some((cfg.nodes as usize) * (cfg.workload_count as usize))
    } else {
        None
    };
    let horizon = cfg.ticks + cfg.grace_ticks + cfg.conv_bound_ticks + cfg.post_ticks + 2;
    let mut ticks_run = 0u64;

    for tick in 0..horizon {
        ticks_run = tick + 1;
        while idx < ordered.len() && ordered[idx].tick <= tick {
            let fault = &ordered[idx].fault;
            match fault {
                ChaosFault::Crash(id) => {
                    h.kill_child(*id);
                    oracles.note_crash(*id);
                }
                ChaosFault::Restart(id) => {
                    // Mirror the simulator: restarting a live node is a
                    // no-op; a dead one rejoins with a new incarnation.
                    let next = match h.children.get(id) {
                        Some(c) if c.alive => None,
                        Some(c) => Some(c.incarnation + 1),
                        None => Some(0),
                    };
                    if let Some(inc) = next {
                        oracles.note_crash(*id);
                        h.spawn_child(*id, inc, StartKind::Joining)?;
                    }
                }
                ChaosFault::LinkDown(a, b) => h.proxy.set_link(*a, *b, false),
                ChaosFault::LinkUp(a, b) => h.proxy.set_link(*a, *b, true),
                ChaosFault::NicDown(addr) => h.proxy.set_node(addr.node, false),
                ChaosFault::NicUp(addr) => h.proxy.set_node(addr.node, true),
                ChaosFault::Partition(groups) => {
                    h.proxy
                        .partition(&groups.iter().map(|g| g.to_vec()).collect::<Vec<_>>());
                }
                ChaosFault::Heal => h.proxy.heal(),
                ChaosFault::Duplicate(p) => {
                    dials.dup_permille = *p;
                    h.proxy.set_dials(dials);
                }
                ChaosFault::Reorder(p) => {
                    dials.reorder_permille = *p;
                    h.proxy.set_dials(dials);
                }
                ChaosFault::Jitter(us) => {
                    dials.delay_us = *us;
                    h.proxy.set_dials(dials);
                }
                ChaosFault::BulkLoss(p) => {
                    dials.bulk_drop_permille = *p;
                    h.proxy.set_dials(dials);
                }
            }
            belief.note(fault);
            if matches!(
                fault,
                ChaosFault::LinkDown(..)
                    | ChaosFault::LinkUp(..)
                    | ChaosFault::NicDown(_)
                    | ChaosFault::NicUp(_)
                    | ChaosFault::Partition(_)
                    | ChaosFault::Heal
            ) {
                last_link_fault = Some(tick);
            }
            faults_applied += 1;
            last_fault = Some(tick);
            idx += 1;
        }

        std::thread::sleep(Duration::from_millis(cfg.tick_ms));
        for id in h.reap() {
            // A self-exited child counts as crashed for vacuity purposes.
            oracles.note_crash(id);
        }

        let view = h.status_view();
        let link_calm = !belief.blocked()
            && last_link_fault.is_none_or(|lf| tick.saturating_sub(lf) >= cfg.grace_ticks);
        if link_calm {
            if was_link_calm {
                membership.observe(&view);
            } else {
                membership.rebaseline(&view);
            }
        }
        was_link_calm = link_calm;
        if let Some(o) = order.as_mut() {
            o.observe(&view);
        }
        let quiet = !belief.blocked()
            && last_fault.is_none_or(|lf| tick.saturating_sub(lf) >= cfg.grace_ticks);
        oracles.observe_tick(&view, quiet);

        if let Some(reason) = first_violation(&membership, order.as_ref(), &oracles) {
            violation = Some((tick, reason));
            break;
        }

        if idx >= ordered.len() && tick >= cfg.ticks {
            let deliveries_done = expect_deliveries.is_none_or(|want| {
                view.nodes
                    .values()
                    .all(|n| !n.live || n.deliveries.len() >= want)
            });
            if quiet && view.membership_agreed() && deliveries_done {
                converged_streak += 1;
                if converged_streak >= cfg.post_ticks {
                    break;
                }
            } else {
                converged_streak = 0;
                last_block = Some(if !quiet {
                    "not yet quiet (standing damage or fault grace)".to_string()
                } else if !view.membership_agreed() {
                    let groups: Vec<String> = view
                        .nodes
                        .iter()
                        .map(|(id, n)| {
                            format!(
                                "n{}:{}{}",
                                id.0,
                                if n.live { "" } else { "dead " },
                                n.group.map_or("-".to_string(), |g| g.0 .0.to_string()),
                            )
                        })
                        .collect();
                    format!("membership not agreed [{}]", groups.join(" "))
                } else {
                    let lags: Vec<String> = view
                        .nodes
                        .iter()
                        .filter(|(_, n)| n.live)
                        .map(|(id, n)| format!("n{}:{}", id.0, n.deliveries.len()))
                        .collect();
                    format!(
                        "deliveries incomplete (want {} per node) [{}]",
                        expect_deliveries.unwrap_or(0),
                        lags.join(" ")
                    )
                });
            }
        }
    }

    // Snapshot the final view *before* the graceful shutdown: ctl-driven
    // leaves legitimately shrink the ring one child at a time, and the
    // report should describe the converged cluster, not the teardown.
    let final_view = h.status_view();
    h.shutdown();
    let per_node: BTreeMap<NodeId, NodeStatus> = final_view.nodes.clone().into_iter().collect();
    let total_regenerations = per_node.values().map(|n| n.regenerations).sum();
    let converged = violation.is_none() && converged_streak >= cfg.post_ticks;
    let report = ProcReport {
        violation,
        converged,
        ticks_run,
        faults_applied,
        exports_parsed: h.exports_parsed,
        per_node,
        total_regenerations,
        proxy: h.proxy.stats(),
        last_block: if converged { None } else { last_block },
    };
    let mut text = String::new();
    text.push_str(&format!(
        "procher run: nodes={} seed={} ticks_run={} faults={} exports={}\n",
        cfg.nodes, cfg.seed, report.ticks_run, report.faults_applied, report.exports_parsed
    ));
    text.push_str(&format!(
        "converged={} regenerations={} proxy={:?}\n",
        report.converged, report.total_regenerations, report.proxy
    ));
    match &report.violation {
        Some((tick, reason)) => text.push_str(&format!("VIOLATION @tick {tick}: {reason}\n")),
        None => text.push_str("no violation\n"),
    }
    if let Some(block) = &report.last_block {
        text.push_str(&format!("last convergence blocker: {block}\n"));
    }
    std::fs::write(cfg.out_dir.join("report.txt"), text)?;
    if !converged {
        // Failed runs leave the merged waterfall + flight dumps beside
        // the report so the CI artifact upload has the full post-mortem.
        write_trace_artifacts(&cfg.out_dir, cfg.nodes)?;
    }
    Ok(report)
}
