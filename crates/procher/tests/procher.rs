//! End-to-end tests of the `procher` binary: real processes, real UDP
//! sockets, the loss proxy in between.
//!
//! Every test first probes whether this environment allows spawning
//! subprocesses at all (some sandboxes forbid it); if not, the tests
//! pass vacuously with a note, mirroring the binary's exit-77 skip
//! convention. The heavy tests serialize on a mutex: the harness is
//! wall-clock timed and co-scheduling two clusters on a small machine
//! would manufacture spurious starvation.

use std::process::Command;
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

fn exe() -> &'static str {
    env!("CARGO_BIN_EXE_procher")
}

fn tracectl_exe() -> &'static str {
    env!("CARGO_BIN_EXE_tracectl")
}

fn spawn_allowed() -> bool {
    Command::new(exe())
        .arg("--probe")
        .status()
        .map(|s| s.success())
        .unwrap_or(false)
}

fn out_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("procher-test-{tag}-{}", std::process::id()))
}

/// Runs the binary, asserting success while honoring the skip code.
fn run_ok(args: &[&str]) {
    let out = Command::new(exe())
        .args(args)
        .output()
        .expect("run procher");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    if out.status.code() == Some(77) {
        eprintln!("procher skipped itself (subprocess spawn forbidden)");
        return;
    }
    assert!(
        out.status.success(),
        "procher {args:?} failed ({:?}):\n{stdout}\n{stderr}",
        out.status.code()
    );
}

#[test]
fn procher_smoke_converges_under_loss() {
    if !spawn_allowed() {
        eprintln!("skipping: subprocess spawn forbidden here");
        return;
    }
    let _guard = SERIAL.lock().unwrap();
    let dir = out_dir("smoke");
    run_ok(&[
        "--seed",
        "3",
        "--nodes",
        "3",
        "--ticks",
        "200",
        "--loss",
        "0.05",
        "--out-dir",
        dir.to_str().unwrap(),
    ]);
    // The run leaves a human-readable report plus per-node exports.
    let report = std::fs::read_to_string(dir.join("report.txt")).expect("report.txt");
    assert!(report.contains("converged=true"), "{report}");
    assert!(dir.join("node-0.export").exists());
}

#[test]
fn procher_differential_sim_vs_real_has_zero_divergence() {
    if !spawn_allowed() {
        eprintln!("skipping: subprocess spawn forbidden here");
        return;
    }
    let _guard = SERIAL.lock().unwrap();
    let dir = out_dir("diff");
    run_ok(&[
        "--differential",
        "--nodes",
        "3",
        "--seed",
        "1",
        "--count",
        "3",
        "--out-dir",
        dir.to_str().unwrap(),
    ]);
    // tracectl merges the per-node export files the run left behind into
    // one cross-node waterfall: a full token lap is three consecutive
    // hops visiting all three real processes.
    let exports: Vec<String> = (0..3)
        .map(|i| dir.join(format!("node-{i}.export")).display().to_string())
        .collect();
    let out = Command::new(tracectl_exe())
        .args(&exports)
        .output()
        .expect("run tracectl");
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("── circulation"), "{text}");
    let hops: Vec<(u64, u32)> = text
        .lines()
        .filter(|l| l.starts_with("hop "))
        .map(|l| {
            let mut it = l.split_whitespace();
            let hop = it.nth(1).unwrap().parse().unwrap();
            let node = it
                .next()
                .unwrap()
                .strip_prefix('n')
                .unwrap()
                .parse()
                .unwrap();
            (hop, node)
        })
        .collect();
    let full_lap = hops.windows(3).any(|w| {
        w[1].0 == w[0].0 + 1 && w[2].0 == w[1].0 + 1 && {
            let mut n: Vec<u32> = w.iter().map(|&(_, n)| n).collect();
            n.sort_unstable();
            n.dedup();
            n.len() == 3
        }
    });
    assert!(
        full_lap,
        "no full causal lap across the 3 processes:\n{text}"
    );
    // Each child also left its flight-recorder dump beside the export.
    for i in 0..3 {
        let flight =
            std::fs::read_to_string(dir.join(format!("node-{i}.flight"))).expect("flight file");
        assert!(flight.contains("last hop before dump: circ="), "{flight}");
    }
}

/// `tracectl` reads a sim chaos run's journal JSON too: the same CLI
/// renders the same waterfall format from either artifact source.
#[test]
fn tracectl_renders_sim_chaos_journal() {
    use raincore_sim::{Cluster, ClusterConfig};
    use raincore_types::{Duration as VDuration, Time};

    if !spawn_allowed() {
        eprintln!("skipping: subprocess spawn forbidden here");
        return;
    }
    let ccfg = ClusterConfig {
        session: raincore_procher::fast_profile(4),
        ..ClusterConfig::default()
    };
    let mut c = Cluster::founding(4, ccfg).unwrap();
    c.run_until(Time::ZERO + VDuration::from_secs(1));
    let holder = c.eating_nodes().pop().expect("someone is eating");
    c.crash(holder);
    let t = c.now();
    c.run_until(t + VDuration::from_secs(2));

    let dir = out_dir("tracectl-sim");
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("journal.json");
    std::fs::write(&journal, c.journal_json()).unwrap();

    let out = Command::new(tracectl_exe())
        .arg(journal.display().to_string())
        .output()
        .expect("run tracectl");
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("── circulation"), "{text}");
    assert!(text.contains("CAUSE_911"), "{text}");
    assert!(text.contains("CAUSE_REGEN"), "{text}");

    // "Follow the token for 2 laps": 4 nodes in the selection, so the
    // lap filter renders exactly 8 hop lines.
    let out = Command::new(tracectl_exe())
        .arg(journal.display().to_string())
        .args(["--laps", "2"])
        .output()
        .expect("run tracectl");
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    let hop_lines = text.lines().filter(|l| l.starts_with("hop ")).count();
    assert_eq!(hop_lines, 8, "{text}");
}

/// The pinned chaos regression — bootstrap after total token-copy loss,
/// shrunk by the sim harness (`chaos_regression_total_copy_loss_bootstrap`)
/// — replayed over real sockets. Every node holding a token copy dies;
/// restarted survivors must bootstrap fresh groups and re-merge.
#[test]
fn procher_regression_total_copy_loss_bootstrap() {
    if !spawn_allowed() {
        eprintln!("skipping: subprocess spawn forbidden here");
        return;
    }
    let _guard = SERIAL.lock().unwrap();
    run_ok(&["--regression", "bootstrap"]);
}
