//! End-to-end tests of the `procher` binary: real processes, real UDP
//! sockets, the loss proxy in between.
//!
//! Every test first probes whether this environment allows spawning
//! subprocesses at all (some sandboxes forbid it); if not, the tests
//! pass vacuously with a note, mirroring the binary's exit-77 skip
//! convention. The heavy tests serialize on a mutex: the harness is
//! wall-clock timed and co-scheduling two clusters on a small machine
//! would manufacture spurious starvation.

use std::process::Command;
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

fn exe() -> &'static str {
    env!("CARGO_BIN_EXE_procher")
}

fn spawn_allowed() -> bool {
    Command::new(exe())
        .arg("--probe")
        .status()
        .map(|s| s.success())
        .unwrap_or(false)
}

fn out_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("procher-test-{tag}-{}", std::process::id()))
}

/// Runs the binary, asserting success while honoring the skip code.
fn run_ok(args: &[&str]) {
    let out = Command::new(exe())
        .args(args)
        .output()
        .expect("run procher");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    if out.status.code() == Some(77) {
        eprintln!("procher skipped itself (subprocess spawn forbidden)");
        return;
    }
    assert!(
        out.status.success(),
        "procher {args:?} failed ({:?}):\n{stdout}\n{stderr}",
        out.status.code()
    );
}

#[test]
fn procher_smoke_converges_under_loss() {
    if !spawn_allowed() {
        eprintln!("skipping: subprocess spawn forbidden here");
        return;
    }
    let _guard = SERIAL.lock().unwrap();
    let dir = out_dir("smoke");
    run_ok(&[
        "--seed",
        "3",
        "--nodes",
        "3",
        "--ticks",
        "200",
        "--loss",
        "0.05",
        "--out-dir",
        dir.to_str().unwrap(),
    ]);
    // The run leaves a human-readable report plus per-node exports.
    let report = std::fs::read_to_string(dir.join("report.txt")).expect("report.txt");
    assert!(report.contains("converged=true"), "{report}");
    assert!(dir.join("node-0.export").exists());
}

#[test]
fn procher_differential_sim_vs_real_has_zero_divergence() {
    if !spawn_allowed() {
        eprintln!("skipping: subprocess spawn forbidden here");
        return;
    }
    let _guard = SERIAL.lock().unwrap();
    let dir = out_dir("diff");
    run_ok(&[
        "--differential",
        "--nodes",
        "3",
        "--seed",
        "1",
        "--count",
        "3",
        "--out-dir",
        dir.to_str().unwrap(),
    ]);
}

/// The pinned chaos regression — bootstrap after total token-copy loss,
/// shrunk by the sim harness (`chaos_regression_total_copy_loss_bootstrap`)
/// — replayed over real sockets. Every node holding a token copy dies;
/// restarted survivors must bootstrap fresh groups and re-merge.
#[test]
fn procher_regression_total_copy_loss_bootstrap() {
    if !spawn_allowed() {
        eprintln!("skipping: subprocess spawn forbidden here");
        return;
    }
    let _guard = SERIAL.lock().unwrap();
    run_ok(&["--regression", "bootstrap"]);
}
