//! The Raincore session node: one instance per cluster member.
//!
//! [`SessionNode`] implements §2.2–2.7 of the paper as a sans-io state
//! machine over the Raincore Transport Service. A driver (the
//! deterministic simulator, or the threaded UDP runtime) feeds it
//! datagrams and time and drains datagrams and [`SessionEvent`]s.
//!
//! ## State machine
//!
//! A node is HUNGRY (no token), EATING (holds the token) or STARVING
//! (HUNGRY past the timeout — token suspected lost, 911 in progress).
//! Normal operation alternates HUNGRY ↔ EATING as the token circulates.
//!
//! ## Implementation notes beyond the paper's text
//!
//! The paper's proofs assume an accurate failure-on-delivery detector.
//! Over a real lossy network the detector can false-alarm *after the
//! target actually received the token* (all acknowledgements lost), which
//! would briefly create two tokens. Three rules restore convergence and
//! are documented here because they are load-bearing:
//!
//! * **Strictly-newer acceptance** — a node accepts a (non-TBM) token
//!   only if its sequence number exceeds `last_seen_seq`, the maximum of
//!   every sequence number this node has ever *received or sent*. The two
//!   tokens produced by a false alarm carry the same hop count, so
//!   whichever reaches a common node second is discarded and the ring
//!   converges back to one token.
//! * **911 compares copy seqs** — a 911 call carries the seq of the
//!   caller's last *received copy* (not `last_seen_seq`): regeneration
//!   must happen from the newest surviving copy so piggybacked multicast
//!   messages are not lost. Ties (both zero at bootstrap) break toward
//!   the lower node id.
//! * **Regeneration jumps the seq by copy+2** — the regenerated token
//!   must out-rank `last_seen_seq` on every live node, and a node that
//!   *sent* the lost token has `last_seen_seq = copy_seq + 1`.
//!
//! TBM (to-be-merged) tokens belong to a *different* group's numbering
//! and skip the staleness check entirely; the merge assigns the merged
//! token `max(seq_a, seq_b) + 1` so both sides accept it.

use crate::events::{Delivery, SessionEvent};
use crate::metrics::SessionMetrics;
use crate::obs::NodeObs;
use crate::typestate::{Role, TimerFired, VerdictOutcome, VoteProgress};
use bytes::Bytes;
use raincore_net::Addr;
use raincore_net::Datagram;
use raincore_obs::TraceKind;
use raincore_transport::dedup::DedupWindow;
use raincore_transport::{BulkDedup, BulkId, BulkStore, Endpoint, PeerTable, TransportEvent};
use raincore_types::config::DetectionMode;
use raincore_types::wire::{WireDecode, WireEncode};
use raincore_types::{
    Attached, AttachedBody, BodyOdor, BulkData, BulkNack, Call911, DeliveryMode, DigestInto, Error,
    GroupId, Incarnation, MsgId, NodeId, OriginSeq, Reply911, Result, Ring, SessionConfig,
    SessionMsg, StateDigest, Time, Token, TokenEncoder, TraceCtx, TransportConfig, Verdict911,
};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// How a node enters the world.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StartMode {
    /// Start with a configured initial membership; the lowest id in the
    /// ring founds the token. This is how a cluster is normally booted.
    Founding(Ring),
    /// Start alone with no token and ask to join via the 911 protocol
    /// (§2.3): "When a new node wishes to participate in the membership,
    /// it sends a 911 message to any node in the group."
    Joining,
    /// Start as a singleton group holding its own token; rely on the
    /// discovery/merge protocol (§2.4) to coalesce with others.
    Isolated,
}

/// What an in-flight transport send was carrying, so completion and
/// failure notifications can be routed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SendKind {
    Token,
    Call911 { req_id: u64 },
    Reply,
    Beacon,
}

#[derive(Debug)]
struct Forwarding {
    msg_id: MsgId,
    token: Token,
}

#[derive(Debug)]
struct PendingDelivery {
    origin: NodeId,
    seq: OriginSeq,
    mode: DeliveryMode,
    /// The payload, once in hand. Inline (piggybacked) messages are born
    /// with it; out-of-band messages start at `None` and fill when the
    /// bulk frame arrives — a missing payload blocks delivery (and, at
    /// the queue front, everything behind it: dissemination is decoupled
    /// from ordering, delivery is not).
    payload: Option<Bytes>,
    /// Agreed messages are born ready; safe messages become ready when
    /// this node observes that every member has received them.
    ready: bool,
    /// Next NACK-pull deadline for a missing out-of-band payload.
    pull_at: Option<Time>,
    /// NACK pulls fired so far; rotates the pull target (origin first,
    /// then the other holders).
    pull_tries: u32,
    /// Members known to hold the payload (the manifest entry's seen set,
    /// which is payload-gated for out-of-band entries), refreshed at each
    /// token pass. Positional order is the ring traversal order.
    holders: Vec<NodeId>,
}

impl PendingDelivery {
    fn key(&self) -> BulkId {
        (self.origin, self.seq)
    }
}

/// The Raincore Distributed Session Service endpoint for one node.
///
/// See the crate documentation for the protocol description and the
/// module documentation for the state machine.
#[derive(Debug)]
pub struct SessionNode {
    id: NodeId,
    cfg: SessionConfig,
    transport: Endpoint,
    /// The typestate protocol core: HUNGRY/EATING/STARVING/DOWN. All
    /// state transitions go through [`crate::typestate`]'s typed edges.
    role: Role,
    /// Local view of the membership, refreshed from each token.
    ring: Ring,
    /// Local copy of the last received token (§2.3: "each node makes a
    /// local copy of the TOKEN after each time the node receives it").
    last_copy: Option<Token>,
    /// Max token seq ever received *or sent* — acceptance high-water mark.
    last_seen_seq: u64,
    /// Token currently in flight to a successor, until acknowledged.
    forwarding: Option<Forwarding>,
    /// Patch-per-hop token wire encoder: pooled scratch buffer + cached
    /// body, so quiescent hops re-encode only the seq header.
    codec: TokenEncoder,
    /// TBM token held while waiting for our own group's token (§2.4).
    held_tbm: Option<Token>,
    /// Node we should hand a TBM token to at the next pass (we saw its
    /// BODYODOR and its group id is lower than ours).
    merge_target: Option<NodeId>,
    /// Join requests (from 911s of non-members) to add at the next pass.
    pending_joins: Vec<NodeId>,
    /// Multicasts queued until we next hold the token.
    outgoing: VecDeque<(OriginSeq, DeliveryMode, Bytes)>,
    next_origin_seq: OriginSeq,
    /// Exactly-once delivery tracking per origin.
    delivered: HashMap<NodeId, DedupWindow>,
    /// Relay-side deduplication of open-group submissions (§2.6).
    open_dedup: HashMap<NodeId, DedupWindow>,
    /// Hold-back queue: messages seen but not yet delivered, in token
    /// order. The front blocks the rest until it is deliverable, which
    /// keeps the total order consistent across delivery modes.
    holdback: VecDeque<PendingDelivery>,
    /// Out-of-band payload cache (DESIGN.md §13): origin-side retransmit
    /// cache and receiver-side buffer for payloads that raced the token.
    bulk_store: BulkStore,
    /// Exactly-once acceptance of bulk frames by bulk id — retransmits
    /// travel under fresh wire ids, so the transport window cannot see
    /// them as duplicates.
    bulk_dedup: BulkDedup,
    /// Kind of every in-flight transport send.
    inflight: HashMap<MsgId, SendKind>,
    req_counter: u64,
    /// Round-robin index over `eligible` for join probes.
    join_probe_idx: usize,
    /// Join probes sent since we last held a token (total-copy-loss
    /// bootstrap counter, compared against `bootstrap_probe_limit`).
    unanswered_probes: u32,
    next_beacon: Time,
    master_requested: bool,
    master_held: bool,
    /// Critical resources (§2.4): name → up. Any `false` shuts the node
    /// down.
    resources: HashMap<String, bool>,
    events: VecDeque<SessionEvent>,
    metrics: SessionMetrics,
    obs: NodeObs,
}

impl SessionNode {
    /// Creates a session node.
    ///
    /// * `local_addrs` — this node's physical addresses (one per NIC).
    /// * `peers` — physical addresses of every node we may talk to
    ///   (normally the whole eligible membership).
    /// * `start` — see [`StartMode`].
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: NodeId,
        inc: Incarnation,
        cfg: SessionConfig,
        tcfg: TransportConfig,
        local_addrs: Vec<Addr>,
        peers: PeerTable,
        start: StartMode,
        now: Time,
    ) -> Result<Self> {
        cfg.validate().map_err(Error::Config)?;
        let transport = Endpoint::new(id, inc, local_addrs, peers, tcfg)?;
        let mut node = SessionNode {
            id,
            transport,
            role: Role::hungry(now),
            ring: Ring::from_iter([id]),
            last_copy: None,
            last_seen_seq: 0,
            forwarding: None,
            codec: TokenEncoder::new(),
            held_tbm: None,
            merge_target: None,
            pending_joins: Vec::new(),
            outgoing: VecDeque::new(),
            next_origin_seq: OriginSeq::default(),
            delivered: HashMap::new(),
            open_dedup: HashMap::new(),
            holdback: VecDeque::new(),
            bulk_store: BulkStore::new(cfg.bulk_cache_entries),
            bulk_dedup: BulkDedup::new(),
            inflight: HashMap::new(),
            req_counter: 0,
            join_probe_idx: 0,
            unanswered_probes: 0,
            next_beacon: now + cfg.beacon_period,
            master_requested: false,
            master_held: false,
            resources: HashMap::new(),
            events: VecDeque::new(),
            metrics: SessionMetrics::default(),
            obs: NodeObs::new(id.0, now),
            cfg,
        };
        match start {
            StartMode::Founding(ring) => {
                if !ring.contains(id) {
                    return Err(Error::Config("initial ring must contain the local node"));
                }
                node.ring = ring.clone();
                if ring.group_id() == Some(GroupId(id)) {
                    // Lowest id founds the token.
                    let token = Token::founding(ring);
                    node.last_seen_seq = token.seq;
                    node.last_copy = Some(token.clone());
                    node.become_eating(now, token);
                }
            }
            StartMode::Joining => {
                node.send_join_probe(now);
                let retry_at = now + node.cfg.starving_retry;
                node.role.begin_starving_probe(retry_at);
            }
            StartMode::Isolated => {
                let token = Token::founding(Ring::from_iter([id]));
                node.last_seen_seq = token.seq;
                node.last_copy = Some(token.clone());
                node.become_eating(now, token);
            }
        }
        Ok(node)
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The active configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.cfg
    }

    /// Local view of the group membership.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// This node's current group id (lowest member of its view).
    pub fn group_id(&self) -> GroupId {
        self.ring.group_id().unwrap_or(GroupId(self.id))
    }

    /// True while the node holds the token (EATING, §2.2).
    pub fn is_eating(&self) -> bool {
        self.role.is_eating()
    }

    /// True once the node has shut itself down.
    pub fn is_down(&self) -> bool {
        self.role.is_down()
    }

    /// Current state name, for traces and tests.
    pub fn state_name(&self) -> &'static str {
        self.role.name()
    }

    /// The typestate protocol core (read-only: state fingerprinting and
    /// assertions; all mutation goes through the session logic).
    pub fn role(&self) -> &Role {
        &self.role
    }

    /// Feeds every behavior-relevant piece of session state (and the
    /// embedded transport endpoint) into a model-checker state digest.
    ///
    /// `payload_digest` handles opaque wire bytes held inside the
    /// transport (see [`Endpoint::digest_into`]). Application multicast
    /// payloads (`outgoing`, `holdback`) are hashed raw — they are opaque
    /// to the protocol and never contain node ids. Deliberately excluded:
    /// `cfg` (constant), `codec` (a cache of already-digested token
    /// state), and `metrics`/`obs` (observability only). `join_probe_idx`
    /// is digested as a plain number: probe order over `cfg.eligible` is
    /// positional, so two id-permuted states with the same index probe
    /// the "same" slot — see DESIGN.md §12 for the soundness argument.
    pub fn digest_into(
        &self,
        now: Time,
        d: &mut StateDigest,
        payload_digest: &dyn Fn(&[u8], &mut StateDigest),
    ) {
        d.node(self.id);
        self.role.digest_into(d, now);
        self.ring.digest_into(d);
        match &self.last_copy {
            Some(t) => {
                d.write_bool(true);
                t.digest_into(d);
            }
            None => d.write_bool(false),
        }
        d.write_u64(self.last_seen_seq);
        match &self.forwarding {
            Some(f) => {
                d.write_bool(true);
                d.write_u64(f.msg_id.0);
                f.token.digest_into(d);
            }
            None => d.write_bool(false),
        }
        match &self.held_tbm {
            Some(t) => {
                d.write_bool(true);
                t.digest_into(d);
            }
            None => d.write_bool(false),
        }
        d.opt_node(self.merge_target);
        // Join order matters (it is the ring insertion order), so digest
        // the list positionally, not sorted.
        d.write_len(self.pending_joins.len());
        for &j in &self.pending_joins {
            d.node(j);
        }
        d.write_len(self.outgoing.len());
        for (seq, mode, payload) in &self.outgoing {
            seq.digest_into(d);
            d.tag(matches!(mode, DeliveryMode::Safe) as u8);
            d.write_bytes(payload);
        }
        self.next_origin_seq.digest_into(d);
        for (label, map) in [(0u8, &self.delivered), (1u8, &self.open_dedup)] {
            d.tag(label);
            let mut ids: Vec<NodeId> = map.keys().copied().collect();
            ids.sort_unstable_by(|a, b| d.canon_cmp(*a, *b));
            d.write_len(ids.len());
            for id in ids {
                d.node(id);
                map[&id].digest_into(d);
            }
        }
        d.write_len(self.holdback.len());
        for p in &self.holdback {
            d.node(p.origin);
            p.seq.digest_into(d);
            d.tag(matches!(p.mode, DeliveryMode::Safe) as u8);
            d.write_bool(p.ready);
            match &p.payload {
                Some(bytes) => {
                    d.write_bool(true);
                    d.write_bytes(bytes);
                }
                None => d.write_bool(false),
            }
            match p.pull_at {
                Some(t) => {
                    d.write_bool(true);
                    d.time_rel(t, now);
                }
                None => d.write_bool(false),
            }
            d.write_u32(p.pull_tries);
            // Holder order is the rotation order — positional.
            d.write_len(p.holders.len());
            for &h in &p.holders {
                d.node(h);
            }
        }
        // Buffered-bulk state: two states differing only in which
        // payloads are resident (or which bulk ids were accepted) behave
        // differently under loss and must not merge.
        self.bulk_store.digest_into(d);
        self.bulk_dedup.digest_into(d);
        let mut inflight: Vec<(MsgId, SendKind)> =
            self.inflight.iter().map(|(k, v)| (*k, *v)).collect();
        inflight.sort_unstable_by_key(|(k, _)| *k);
        d.write_len(inflight.len());
        for (msg_id, kind) in inflight {
            d.write_u64(msg_id.0);
            match kind {
                SendKind::Token => d.tag(0),
                SendKind::Call911 { req_id } => {
                    d.tag(1);
                    d.write_u64(req_id);
                }
                SendKind::Reply => d.tag(2),
                SendKind::Beacon => d.tag(3),
            }
        }
        d.write_u64(self.req_counter);
        d.write_len(self.join_probe_idx);
        d.write_u32(self.unanswered_probes);
        d.time_rel(self.next_beacon, now);
        d.write_bool(self.master_requested);
        d.write_bool(self.master_held);
        let mut resources: Vec<(&String, bool)> =
            self.resources.iter().map(|(k, v)| (k, *v)).collect();
        resources.sort_unstable_by_key(|(k, _)| *k);
        d.write_len(resources.len());
        for (name, up) in resources {
            d.write_bytes(name.as_bytes());
            d.write_bool(up);
        }
        // Undrained event queues must never let two different states
        // merge; drained (the normal case) this contributes a constant.
        d.write_len(self.events.len());
        self.transport.digest_into(now, d, payload_digest);
    }

    /// Sequence number of the last received token copy (0 = never).
    pub fn last_copy_seq(&self) -> u64 {
        self.last_copy.as_ref().map_or(0, |t| t.seq)
    }

    /// Counter snapshot.
    pub fn metrics(&self) -> SessionMetrics {
        self.metrics
    }

    /// Observability side-car: trace journal and latency histograms.
    pub fn obs(&self) -> &NodeObs {
        &self.obs
    }

    /// Mutable observability access (e.g. to push harness-level events
    /// into this node's trace journal).
    pub fn obs_mut(&mut self) -> &mut NodeObs {
        &mut self.obs
    }

    /// Transport-layer counter snapshot.
    pub fn transport_stats(&self) -> raincore_transport::TransportStats {
        self.transport.stats()
    }

    /// Transport-layer latency histograms (RTT, failure-on-delivery).
    pub fn transport_obs(&self) -> &raincore_transport::TransportObs {
        self.transport.obs()
    }

    /// Mutable access to the transport peer table — e.g. to register the
    /// addresses of a late joiner or of an external open-group client so
    /// it can be acknowledged (§2.6).
    pub fn transport_peers_mut(&mut self) -> &mut PeerTable {
        self.transport.peers_mut()
    }

    /// True if the master lock is currently held by this node.
    pub fn holds_master(&self) -> bool {
        self.master_held
    }

    // ------------------------------------------------------------------
    // Application API
    // ------------------------------------------------------------------

    /// Queues `payload` for reliable atomic multicast to the whole group
    /// with the requested consistency `mode` (§2.6). The message is
    /// attached to the token at the next pass. Returns the origin
    /// sequence number; [`SessionEvent::MulticastAtomic`] fires with the
    /// same number once every member has received the message.
    pub fn multicast(&mut self, mode: DeliveryMode, payload: Bytes) -> Result<OriginSeq> {
        if self.is_down() {
            return Err(Error::ShutDown);
        }
        if payload.len() > self.cfg.max_payload {
            return Err(Error::PayloadTooLarge {
                size: payload.len(),
                max: self.cfg.max_payload,
            });
        }
        let seq = self.next_origin_seq;
        self.next_origin_seq = seq.next();
        self.obs.submitted(seq, mode);
        self.outgoing.push_back((seq, mode, payload));
        Ok(seq)
    }

    /// Requests the master lock (§2.7). The lock is granted the next time
    /// this node holds the token ([`SessionEvent::MasterAcquired`]); the
    /// token is then *retained* — pausing the ring — until
    /// [`SessionNode::release_master`].
    pub fn request_master(&mut self) -> Result<()> {
        if self.is_down() {
            return Err(Error::ShutDown);
        }
        self.master_requested = true;
        if self.is_eating() && !self.master_held {
            self.master_held = true;
            self.events.push_back(SessionEvent::MasterAcquired);
        }
        Ok(())
    }

    /// Releases the master lock and immediately forwards the token.
    pub fn release_master(&mut self, now: Time) -> Result<()> {
        if !self.master_held {
            return Err(Error::InvalidLockOp("master lock not held"));
        }
        self.master_requested = false;
        self.master_held = false;
        self.events.push_back(SessionEvent::MasterReleased);
        if self.is_eating() {
            self.pass_token(now);
        }
        Ok(())
    }

    /// Declares a named critical resource (§2.4), initially up.
    pub fn add_critical_resource(&mut self, name: impl Into<String>) {
        self.resources.insert(name.into(), true);
    }

    /// Updates a critical resource's health. If any resource is down the
    /// node shuts itself down — the paper's split-brain prevention: only
    /// the partition that still reaches the shared resource survives.
    pub fn set_resource(&mut self, now: Time, name: &str, up: bool) {
        self.resources.insert(name.to_string(), up);
        if !up && !self.is_down() {
            self.shutdown(now, format!("critical resource '{name}' lost"));
        }
    }

    /// Voluntarily leaves the group and shuts down. If this node holds
    /// the token it removes itself from the membership and forwards the
    /// token so the ring continues without interruption.
    pub fn leave(&mut self, now: Time) {
        if !self.is_down() {
            self.shutdown(now, "voluntary leave".to_string());
        }
    }

    fn shutdown(&mut self, now: Time, reason: String) {
        if let Some(mut token) = self.role.shut_down() {
            token.ring.remove(self.id);
            if !token.ring.is_empty() {
                // Hand the token off cleanly before going dark: the first
                // member after our old ring position that is still in the
                // (self-removed) membership.
                token.seq += 1;
                token.trace.hop += 1;
                let next = self
                    .ring
                    .successors_of(self.id)
                    .into_iter()
                    .find(|n| token.ring.contains(*n));
                if let Some(next) = next {
                    let msg = self.encode_token(&token);
                    if let Ok(mid) = self.transport.send(now, next, msg) {
                        self.inflight.insert(mid, SendKind::Token);
                        self.metrics.tokens_sent += 1;
                    }
                }
            }
        }
        self.master_held = false;
        self.master_requested = false;
        self.obs.tick(now);
        self.obs.shut_down();
        self.events.push_back(SessionEvent::ShutDown { reason });
    }

    // ------------------------------------------------------------------
    // Driver interface (sans-io)
    // ------------------------------------------------------------------

    /// Feeds a received datagram into the node.
    pub fn on_datagram(&mut self, now: Time, dgram: Datagram) {
        if self.is_down() {
            return;
        }
        self.obs.tick(now);
        self.obs.hop_arrival(); // stage b0: datagram in hand
        self.transport.on_datagram(now, dgram);
        self.drain_transport(now);
    }

    /// Advances timers to `now`.
    pub fn on_tick(&mut self, now: Time) {
        if self.is_down() {
            return;
        }
        self.obs.tick(now);
        self.transport.on_tick(now);
        self.drain_transport(now);
        if self.is_down() {
            return;
        }

        match self
            .role
            .timer(now, self.cfg.hungry_timeout, self.master_held)
        {
            TimerFired::PassToken => self.pass_token(now),
            TimerFired::Starve => self.enter_starving(now),
            TimerFired::Retry911 => self.retry_starving(now),
            TimerFired::Idle => {}
        }

        self.fire_bulk_pulls(now);

        if now >= self.next_beacon {
            self.send_beacons(now);
            self.next_beacon = now + self.cfg.beacon_period;
        }
    }

    /// Earliest instant at which [`SessionNode::on_tick`] has work to do.
    pub fn next_wakeup(&self) -> Option<Time> {
        if self.is_down() {
            return None;
        }
        let mut earliest = self.transport.next_wakeup();
        let mut consider = |t: Time| {
            earliest = Some(earliest.map_or(t, |e: Time| e.min(t)));
        };
        if let Some(t) = self
            .role
            .next_deadline(self.cfg.hungry_timeout, self.master_held)
        {
            consider(t);
        }
        if self.has_absent_eligible() {
            consider(self.next_beacon);
        }
        for p in &self.holdback {
            if p.payload.is_none() {
                if let Some(t) = p.pull_at {
                    consider(t);
                }
            }
        }
        earliest
    }

    /// Drains one outgoing datagram, if any.
    pub fn poll_outgoing(&mut self) -> Option<Datagram> {
        self.transport.poll_outgoing()
    }

    /// Drains one application event, if any.
    pub fn poll_event(&mut self) -> Option<SessionEvent> {
        self.events.pop_front()
    }

    // ------------------------------------------------------------------
    // Transport event handling
    // ------------------------------------------------------------------

    fn drain_transport(&mut self, now: Time) {
        while let Some(ev) = self.transport.poll_event() {
            if self.is_down() {
                return;
            }
            match ev {
                TransportEvent::Received { from, payload } => {
                    self.obs.hop_payload(); // stage b1: about to decode
                    if let Ok(msg) = SessionMsg::decode_from_bytes(&payload) {
                        self.metrics.task_switches += 1;
                        self.on_session_msg(now, from, msg);
                    }
                }
                TransportEvent::Delivered { msg_id, .. } => {
                    self.inflight.remove(&msg_id);
                    if self.forwarding.as_ref().is_some_and(|f| f.msg_id == msg_id) {
                        self.forwarding = None;
                    }
                }
                TransportEvent::DeliveryFailed { msg_id, to } => {
                    let kind = self.inflight.remove(&msg_id);
                    self.on_delivery_failed(now, msg_id, to, kind);
                }
            }
        }
    }

    fn on_session_msg(&mut self, now: Time, from: NodeId, msg: SessionMsg) {
        match msg {
            SessionMsg::Token(t) => self.on_token(now, t),
            SessionMsg::Call911(c) => self.on_call911(now, from, c),
            SessionMsg::Reply911(r) => self.on_reply911(now, r),
            SessionMsg::BodyOdor(b) => self.on_beacon(b),
            SessionMsg::Open(o) => self.on_open(o),
            SessionMsg::Bulk(b) => self.on_bulk(b),
            SessionMsg::BulkNack(n) => self.on_bulk_nack(now, n),
        }
    }

    // ------------------------------------------------------------------
    // Out-of-band bulk dissemination (DESIGN.md §13)
    // ------------------------------------------------------------------

    /// A bulk payload frame arrived (original send or a NACK answer).
    /// Buffer it and fill any hold-back entry waiting on this id.
    fn on_bulk(&mut self, b: BulkData) {
        self.metrics.bulk_frames_received += 1;
        let key = (b.origin, b.seq);
        let fresh = self.bulk_dedup.insert(b.origin, b.seq);
        if !fresh {
            self.metrics.bulk_duplicates += 1;
            // A duplicate can still plug a hole: the first copy may have
            // been evicted from the bounded store before the manifest
            // ordered it — the NACK pull re-requests exactly this id.
            let waiting = self
                .holdback
                .iter()
                .any(|p| p.key() == key && p.payload.is_none());
            if !waiting {
                return;
            }
        }
        if self
            .delivered
            .get(&b.origin)
            .is_some_and(|w| w.contains(MsgId(b.seq.0)))
        {
            return; // late retransmit of an already-delivered payload
        }
        self.bulk_store.insert(key, b.payload.clone());
        let mut filled = false;
        for p in self.holdback.iter_mut() {
            if p.key() == key && p.payload.is_none() {
                p.payload = Some(b.payload.clone());
                p.pull_at = None;
                filled = true;
            }
        }
        if filled {
            self.drain_holdback();
        }
    }

    /// A member is missing a bulk payload we may hold: answer from the
    /// store, best-effort. Any holder may serve the pull — the requester
    /// rotates targets, so the origin being dead does not strand it.
    fn on_bulk_nack(&mut self, now: Time, n: BulkNack) {
        let key = (n.origin, n.seq);
        if let Some(payload) = self.bulk_store.get(key).cloned() {
            let msg = SessionMsg::Bulk(BulkData {
                origin: n.origin,
                seq: n.seq,
                payload,
            })
            .encode_to_bytes();
            if self.transport.send_unreliable(now, n.from, msg).is_ok() {
                self.metrics.bulk_nacks_served += 1;
            }
        }
    }

    /// Unicasts the payload frame for a newly attached out-of-band
    /// multicast to every other member. Fire-and-forget: a lost frame is
    /// recovered by the receiver's NACK pull, never by the transport's
    /// failure-on-delivery detector (bulk loss must not look like a
    /// member failure).
    fn send_bulk_frames(&mut self, now: Time, ring: &Ring, seq: OriginSeq, payload: &Bytes) {
        let msg = SessionMsg::Bulk(BulkData {
            origin: self.id,
            seq,
            payload: payload.clone(),
        })
        .encode_to_bytes();
        for member in ring.iter().filter(|&m| m != self.id) {
            if self
                .transport
                .send_unreliable(now, member, msg.clone())
                .is_ok()
            {
                self.metrics.bulk_frames_sent += 1;
            }
        }
    }

    /// Fires NACK pulls for hold-back entries whose out-of-band payload
    /// is overdue, rotating the target: the origin first (it release-gates
    /// its copy on retirement), then the other members the manifest shows
    /// as holders.
    fn fire_bulk_pulls(&mut self, now: Time) {
        let mut pulls: Vec<(NodeId, BulkNack)> = Vec::new();
        let me = self.id;
        let period = self.cfg.bulk_pull_timeout;
        for p in self.holdback.iter_mut() {
            if p.payload.is_some() {
                continue;
            }
            let Some(at) = p.pull_at else { continue };
            if now < at {
                continue;
            }
            let mut candidates: Vec<NodeId> = vec![p.origin];
            candidates.extend(
                p.holders
                    .iter()
                    .copied()
                    .filter(|&h| h != me && h != p.origin),
            );
            let target = candidates[(p.pull_tries as usize) % candidates.len()];
            p.pull_tries = p.pull_tries.wrapping_add(1);
            p.pull_at = Some(now + period);
            pulls.push((
                target,
                BulkNack {
                    from: me,
                    origin: p.origin,
                    seq: p.seq,
                },
            ));
        }
        for (to, n) in pulls {
            let bytes = SessionMsg::BulkNack(n).encode_to_bytes();
            if self.transport.send_unreliable(now, to, bytes).is_ok() {
                self.metrics.bulk_nacks_sent += 1;
            }
        }
    }

    /// Open group communication (§2.6): a non-member handed us a message
    /// to forward to the whole group. Deduplicate per (sender, seq) —
    /// the external client may retry toward us — and multicast the
    /// payload in an envelope that preserves the external origin.
    fn on_open(&mut self, o: raincore_types::messages::OpenSubmit) {
        if !self.ring.contains(self.id) {
            return;
        }
        let fresh = self
            .open_dedup
            .entry(o.from)
            .or_default()
            .insert(MsgId(o.seq.0));
        if !fresh {
            return;
        }
        let envelope = crate::open::wrap_open(o.from, o.seq, &o.payload);
        if self.multicast(DeliveryMode::Agreed, envelope).is_ok() {
            self.metrics.open_relayed += 1;
        }
    }

    fn on_delivery_failed(&mut self, now: Time, msg_id: MsgId, to: NodeId, kind: Option<SendKind>) {
        match kind {
            Some(SendKind::Token) => {
                self.metrics.failures_detected += 1;
                self.obs.tick(now);
                self.obs.trace(TraceKind::PeerFailed { peer: to.0 });
                let aggressive = self.cfg.detection == DetectionMode::Aggressive;
                match self.forwarding.take() {
                    Some(mut f) if f.msg_id == msg_id => {
                        // The pass we are blocked on failed: skip the dead
                        // successor and hand the token onward (§2.2).
                        if aggressive {
                            f.token.ring.remove(to);
                            self.remove_member_locally(to);
                        }
                        self.resend_token(now, f.token, to);
                    }
                    other => {
                        self.forwarding = other;
                        if aggressive {
                            // A stale pass failed after we already moved on:
                            // still treat it as a failure detection of `to`.
                            self.remove_member_locally(to);
                            self.role.remove_from_held(to);
                        }
                    }
                }
            }
            Some(SendKind::Call911 { .. }) => {
                // A 911 voter is unreachable. Failure-on-delivery is a
                // failure detection of the *target* (§2.2) no matter
                // which request carried it — the starving-retry period
                // can be shorter than the transport's detection time, so
                // the notification may belong to an earlier call and must
                // still count against the current vote.
                self.obs.tick(now);
                self.obs.trace(TraceKind::PeerFailed { peer: to.0 });
                if self.cfg.detection == DetectionMode::Aggressive {
                    self.remove_member_locally(to);
                }
                match self.role.vote_peer_failed(to) {
                    VoteProgress::NotVoting => {}
                    VoteProgress::Recorded {
                        was_awaiting,
                        vote_complete,
                    } => {
                        if was_awaiting {
                            // The vote proceeds without the dead voter.
                            self.metrics.retransmissions_acted += 1;
                        }
                        if vote_complete {
                            self.regenerate(now);
                        }
                    }
                }
            }
            Some(SendKind::Reply) | Some(SendKind::Beacon) | None => {
                // Verdicts and beacons are best-effort.
            }
        }
    }

    // ------------------------------------------------------------------
    // Token handling
    // ------------------------------------------------------------------

    fn on_token(&mut self, now: Time, t: Token) {
        self.obs.hop_decoded(); // stage b2: the payload was a token
        if t.tbm {
            self.on_tbm_token(now, t);
            return;
        }
        if t.seq <= self.last_seen_seq {
            // Duplicate-token elimination (see module docs).
            self.metrics.stale_tokens_dropped += 1;
            self.obs.trace(TraceKind::TokenStale {
                seq: t.seq,
                newest: self.last_seen_seq,
            });
            return;
        }
        if !t.ring.contains(self.id) {
            // We are not in this membership (we were excluded and the 911
            // rejoin has not completed). Do not touch the token.
            self.metrics.stale_tokens_dropped += 1;
            self.obs.trace(TraceKind::TokenStale {
                seq: t.seq,
                newest: self.last_seen_seq,
            });
            return;
        }
        self.last_seen_seq = t.seq;
        self.last_copy = Some(t.clone());
        // If two tokens converged on us (false-alarm fork), absorb: keep
        // the newer ring, preserve any messages only the old one had.
        let mut t = t;
        self.role.absorb_fork(&mut t);
        self.become_eating(now, t);
    }

    fn on_tbm_token(&mut self, now: Time, mut t: Token) {
        if let Some(ours) = self.role.take_token(now) {
            // Our own token is in hand: merge right away.
            let merged = self.merge_tokens(ours, t);
            self.last_copy = Some(merged.clone());
            self.last_seen_seq = merged.seq;
            self.become_eating(now, merged);
        } else if self.last_copy.is_none() {
            // We never had a token of our own (fresh joiner): the TBM
            // token simply becomes ours.
            t.tbm = false;
            t.seq += 1;
            t.trace.hop += 1;
            self.last_seen_seq = t.seq;
            self.last_copy = Some(t.clone());
            self.metrics.merges += 1;
            self.become_eating(now, t);
        } else {
            // Hold it until our own group's token arrives (§2.4).
            self.held_tbm = Some(t);
        }
    }

    /// Merges our token with a held TBM token (§2.4): union membership,
    /// concatenate multicast messages, out-rank both sequence numbers.
    fn merge_tokens(&mut self, mut ours: Token, mut other: Token) -> Token {
        // The absorbed group is the other token's membership *without* us
        // (a TBM token already contains the node it was handed to).
        let absorbed = other
            .ring
            .iter()
            .filter(|&n| n != self.id)
            .min()
            .map(GroupId)
            .unwrap_or(GroupId(self.id));
        for m in other.msgs.take_all() {
            if !ours.msgs.iter().any(|x| x.key() == m.key()) {
                ours.msgs.push(m);
            }
        }
        ours.ring.merge(&other.ring);
        // A merge ends both lineages and mints a fresh circulation whose
        // causal parent is whichever lineage had progressed furthest.
        let parent_ctx = if other.trace.hop > ours.trace.hop {
            other.trace
        } else {
            ours.trace
        };
        ours.seq = ours.seq.max(other.seq) + 1;
        ours.trace = TraceCtx::mint(self.id, ours.seq, parent_ctx.hop);
        self.obs.hop_minted(parent_ctx, ours.trace);
        ours.tbm = false;
        self.metrics.merges += 1;
        self.obs.trace(TraceKind::Merged {
            absorbed_group: absorbed.0 .0,
        });
        self.events.push_back(SessionEvent::Merged { absorbed });
        ours
    }

    /// Accepts `token` and enters EATING: refresh membership, process
    /// piggybacked messages, grant a pending master request.
    fn become_eating(&mut self, now: Time, mut token: Token) {
        self.obs.tick(now);
        self.unanswered_probes = 0;
        if let Some(tbm) = self.held_tbm.take() {
            token = self.merge_tokens(token, tbm);
            self.last_copy = Some(token.clone());
            self.last_seen_seq = token.seq;
        }
        let hungry_since = self.role.hungry_since();
        let hop = token.ring.iter().position(|n| n == self.id).unwrap_or(0) as u64;
        self.obs
            .token_accepted(token.seq, hop, token.ring.len() as u64, hungry_since);
        self.obs.hop_accepted(token.trace); // stage b3: protocol accepted
        self.sync_membership(&token.ring);
        self.process_attachments(now, &mut token);
        self.metrics.tokens_received += 1;
        let deadline = now + self.cfg.token_hold;
        self.role.accept_token(token, deadline);
        if self.master_requested && !self.master_held {
            self.master_held = true;
            self.events.push_back(SessionEvent::MasterAcquired);
        }
    }

    /// Marks, buffers, delivers and retires piggybacked multicast
    /// messages (§2.6).
    ///
    /// Delivery order is the *token order*: messages enter a local
    /// hold-back queue the first time they are seen (the token's message
    /// list is append-only modulo retirement, so every member buffers
    /// them in the same global order), and the queue drains strictly from
    /// the front. A safe message that is not yet known to be received by
    /// everyone blocks everything queued behind it — this is what makes
    /// the total order hold *across* delivery modes, exactly as "the
    /// message ordering on the token decides the message ordering on each
    /// of the nodes".
    fn process_attachments(&mut self, now: Time, token: &mut Token) {
        let ring = token.ring.clone();
        for m in token.msgs.iter_mut() {
            // Payload-gated acknowledgement (DESIGN.md §13): an
            // out-of-band entry is marked seen only once its payload is
            // actually in hand, so `seen_by_all` certifies every member
            // can deliver — the stability watermark that makes retirement
            // (and the origin dropping its retransmit cache) safe without
            // any new wire state.
            let have_payload = match &m.body {
                AttachedBody::Inline(_) => true,
                AttachedBody::Oob { .. } => {
                    self.bulk_store.contains(m.key())
                        || self
                            .delivered
                            .get(&m.origin)
                            .is_some_and(|w| w.contains(MsgId(m.seq.0)))
                        || self
                            .holdback
                            .iter()
                            .any(|p| p.key() == m.key() && p.payload.is_some())
                }
            };
            if have_payload {
                m.mark_seen(self.id);
            }
            self.buffer_message(now, m);
            if let Some(p) = self.holdback.iter_mut().find(|p| p.key() == m.key()) {
                // Refresh the holder snapshot for NACK-pull rotation.
                p.holders.clone_from(&m.seen);
            }
            if m.mode == DeliveryMode::Safe && m.seen_by_all(&ring) {
                // Every member has it: deliverable (§2.6's extra round).
                m.mark_confirmed(self.id);
                if let Some(p) = self.holdback.iter_mut().find(|p| p.key() == m.key()) {
                    p.ready = true;
                }
            }
        }
        self.drain_holdback();
        // Retire completed messages. The *originator* retires its own
        // (and emits the atomicity confirmation); anyone may retire a
        // message whose originator has left the membership.
        let mut retired: Vec<OriginSeq> = Vec::new();
        let my_id = self.id;
        token.msgs.retain(|m| {
            let done = match m.mode {
                DeliveryMode::Agreed => m.seen_by_all(&ring),
                DeliveryMode::Safe => m.confirmed_by_all(&ring),
            };
            let responsible = m.origin == my_id || !ring.contains(m.origin);
            if done && responsible {
                if m.origin == my_id {
                    retired.push(m.seq);
                }
                false
            } else {
                true
            }
        });
        for seq in retired {
            self.obs.own_atomic(seq);
            self.events.push_back(SessionEvent::MulticastAtomic { seq });
        }
        // Release bulk payloads whose manifest entries have retired: an
        // entry retires only once every member marked it seen, and an
        // out-of-band entry is marked seen only with the payload in hand,
        // so no member can still need to pull it.
        let on_token: BTreeSet<BulkId> = token
            .msgs
            .iter()
            .filter(|m| m.is_oob())
            .map(|m| m.key())
            .collect();
        let resident: Vec<BulkId> = self.bulk_store.keys().collect();
        for k in resident {
            let delivered = self
                .delivered
                .get(&k.0)
                .is_some_and(|w| w.contains(MsgId(k.1 .0)));
            if delivered && !on_token.contains(&k) {
                self.bulk_store.remove(k);
            }
        }
    }

    /// Adds a newly seen message to the hold-back queue (idempotent).
    fn buffer_message(&mut self, now: Time, m: &Attached) {
        let key = m.key();
        let already_delivered = self
            .delivered
            .get(&m.origin)
            .is_some_and(|w| w.contains(MsgId(m.seq.0)));
        if already_delivered || self.holdback.iter().any(|p| p.key() == key) {
            return;
        }
        if m.mode == DeliveryMode::Safe {
            self.metrics.safe_held_back += 1;
            self.obs.trace(TraceKind::SafeHeld {
                origin: m.origin.0,
                seq: m.seq.0,
            });
        }
        // Two-phase delivery: inline entries carry their payload on the
        // token; an out-of-band id is deliverable only once the bulk
        // frame (which races the token) is in hand, with the NACK pull
        // timer as the loss backstop.
        let (payload, pull_at) = match m.inline_payload() {
            Some(p) => (Some(p.clone()), None),
            None => match self.bulk_store.get(key).cloned() {
                Some(p) => (Some(p), None),
                None => (None, Some(now + self.cfg.bulk_pull_timeout)),
            },
        };
        self.holdback.push_back(PendingDelivery {
            origin: m.origin,
            seq: m.seq,
            mode: m.mode,
            payload,
            ready: m.mode == DeliveryMode::Agreed,
            pull_at,
            pull_tries: 0,
            holders: m.seen.clone(),
        });
    }

    /// Delivers the ready prefix of the hold-back queue, in token order.
    /// "Ready" means ordered (agreed, or safe-confirmed) *and* the
    /// payload is in hand — unless the `bulk_blind_delivery` fault dial
    /// is set, which deliberately re-opens the dropped-payload /
    /// delivered-id gap so the model checker can demonstrate it.
    fn drain_holdback(&mut self) {
        let blind = self.cfg.bulk_blind_delivery;
        while self
            .holdback
            .front()
            .is_some_and(|front| front.ready && (front.payload.is_some() || blind))
        {
            let Some(p) = self.holdback.pop_front() else {
                return;
            };
            let fresh = self
                .delivered
                .entry(p.origin)
                .or_default()
                .insert(MsgId(p.seq.0));
            if fresh {
                self.metrics.deliveries += 1;
                self.obs.trace(TraceKind::Delivered {
                    origin: p.origin.0,
                    seq: p.seq.0,
                    safe: p.mode == DeliveryMode::Safe,
                });
                if p.origin == self.id {
                    self.obs.own_delivered(p.seq);
                }
                self.events.push_back(SessionEvent::Delivery(Delivery {
                    origin: p.origin,
                    seq: p.seq,
                    mode: p.mode,
                    payload: p.payload.unwrap_or_default(),
                }));
            }
        }
    }

    /// Forwards the token to the next member: attach queued multicasts,
    /// admit pending joiners, hand off a TBM token if a merge is due.
    fn pass_token(&mut self, now: Time) {
        let Some(mut token) = self.role.take_token(now) else {
            return;
        };
        // Stage b3': pass-side work begins. The EATING hold between b3
        // and here is deliberately not a stage — it measures the
        // application's token-hold budget, not the pipeline.
        self.obs.hop_pass_begin();

        // Attach queued multicasts at the latest possible moment. The
        // attach position *is* the message's place in the agreed total
        // order; the originator buffers its own message here and delivers
        // it through the same hold-back discipline as everyone else (so
        // an earlier not-yet-safe message still blocks it). The token has
        // bounded capacity: what does not fit waits for a later pass
        // (backpressure that keeps hop latency bounded under bursts).
        let mut attached_any = false;
        while token.msgs.len() < self.cfg.max_attached {
            let Some((seq, mode, payload)) = self.outgoing.pop_front() else {
                break;
            };
            // Size-threshold dial (DESIGN.md §13): payloads at or above
            // `bulk_threshold` are disseminated out-of-band — the token
            // carries only the id manifest while the payload is unicast
            // to every member and cached for NACK retransmission until
            // the manifest entry retires. Small payloads keep riding the
            // token (piggyback fallback).
            let a = if self.cfg.bulk_threshold > 0 && payload.len() >= self.cfg.bulk_threshold {
                self.bulk_store.insert((self.id, seq), payload.clone());
                self.send_bulk_frames(now, &token.ring, seq, &payload);
                Attached::new_oob(self.id, seq, mode, payload.len() as u64)
            } else {
                Attached::new(self.id, seq, mode, payload)
            };
            self.buffer_message(now, &a);
            token.msgs.push(a);
            self.metrics.multicasts_sent += 1;
            attached_any = true;
        }
        if attached_any {
            self.drain_holdback();
        }

        // Admit joiners right after ourselves so the token reaches them
        // immediately (§2.3: "it then sends the TOKEN to the new node").
        let joins: Vec<NodeId> = std::mem::take(&mut self.pending_joins);
        for j in joins {
            if j != self.id {
                token.ring.insert_after(self.id, j);
            }
        }

        // Merge handoff (§2.4): add the BODYODOR sender, flag the token
        // TBM, and send it to that node instead of our normal successor.
        if let Some(target) = self.merge_target.take() {
            if !token.ring.contains(target) {
                token.ring.insert_after(self.id, target);
                token.tbm = true;
                token.seq += 1;
                token.trace.hop += 1;
                self.last_seen_seq = self.last_seen_seq.max(token.seq);
                self.sync_membership(&token.ring);
                self.obs.trace(TraceKind::MergeHandoff { to: target.0 });
                self.send_token(now, token, target);
                return;
            }
        }

        self.sync_membership(&token.ring);
        token.seq += 1;
        token.trace.hop += 1;
        self.last_seen_seq = self.last_seen_seq.max(token.seq);
        let next = token.ring.next_after(self.id).unwrap_or(self.id);
        if next == self.id {
            // Singleton ring: the pass is a self-pass.
            self.metrics.self_passes += 1;
            self.last_copy = Some(token.clone());
            self.become_eating(now, token);
        } else {
            self.send_token(now, token, next);
        }
    }

    /// Encodes the token wire image via the patch-per-hop codec,
    /// recording the encode size and body-cache counters.
    fn encode_token(&mut self, token: &Token) -> Bytes {
        let bytes = self.codec.encode(token);
        self.metrics.token_body_cache_hits = self.codec.cache_hits();
        self.metrics.token_body_cache_misses = self.codec.cache_misses();
        self.obs.token_encode_bytes.record(bytes.len() as u64);
        self.obs.hop_encoded(); // stage b4: wire image ready
        bytes
    }

    fn send_token(&mut self, now: Time, token: Token, to: NodeId) {
        // Refresh our local copy with the outgoing token: it carries the
        // multicasts we just attached, and if the receiver dies with the
        // only post-attach copy, regeneration must not lose them. One
        // snapshot feeds both the copy (a CoW share) and the wire image
        // (patch-per-hop encoder), so a quiescent hop allocates only the
        // output buffer.
        let bytes = self.encode_token(&token);
        self.last_copy = Some(token.clone());
        match self.transport.send(now, to, bytes) {
            Ok(msg_id) => {
                self.obs.trace(TraceKind::TokenTx {
                    seq: token.seq,
                    to: to.0,
                });
                // Stage b5: the hop is complete — emit its span under the
                // outgoing header (hop seq as sent).
                self.obs.hop_sent(token.trace);
                self.inflight.insert(msg_id, SendKind::Token);
                self.forwarding = Some(Forwarding { msg_id, token });
                self.metrics.tokens_sent += 1;
                self.role.rearm_hungry(now);
            }
            Err(_) => {
                // No transport addresses for the successor: treat exactly
                // like an immediate failure-on-delivery.
                self.metrics.failures_detected += 1;
                let mut token = token;
                if self.cfg.detection == DetectionMode::Aggressive {
                    token.ring.remove(to);
                    self.remove_member_locally(to);
                }
                self.resend_token(now, token, to);
            }
        }
    }

    /// Re-sends the token after a failed pass, walking successors.
    fn resend_token(&mut self, now: Time, mut token: Token, failed: NodeId) {
        self.metrics.retransmissions_acted += 1;
        // If the failed pass was a TBM handoff the merge is aborted: the
        // token must not reach a normal successor still flagged TBM.
        token.tbm = false;
        let next = if self.cfg.detection == DetectionMode::Aggressive {
            token.ring.next_after(self.id)
        } else {
            // Timeout-only mode keeps the dead member in the ring and
            // merely skips it for this pass.
            self.ring
                .successors_of(self.id)
                .into_iter()
                .find(|&n| n != failed && token.ring.contains(n))
        };
        match next {
            Some(n) if n != self.id => self.send_token(now, token, n),
            _ => {
                // Nobody else reachable. Under aggressive detection we
                // are now a singleton group; under timeout-only we keep
                // the membership and retry on the next pass.
                if self.cfg.detection == DetectionMode::Aggressive {
                    token.ring = Ring::from_iter([self.id]);
                }
                self.sync_membership(&token.ring);
                self.last_copy = Some(token.clone());
                self.become_eating(now, token);
            }
        }
    }

    fn remove_member_locally(&mut self, node: NodeId) {
        if self.ring.remove(node) {
            let ring = self.ring.clone();
            self.obs
                .member_changed(self.obs.last_trace(), node.0, false);
            self.events.push_back(SessionEvent::MembershipChanged {
                ring,
                added: Vec::new(),
                removed: vec![node],
            });
        }
        if let Some(copy) = &mut self.last_copy {
            copy.ring.remove(node);
        }
    }

    fn sync_membership(&mut self, new_ring: &Ring) {
        if self.ring == *new_ring {
            return;
        }
        let added: Vec<NodeId> = new_ring
            .iter()
            .filter(|n| !self.ring.contains(*n))
            .collect();
        let removed: Vec<NodeId> = self
            .ring
            .iter()
            .filter(|n| !new_ring.contains(*n))
            .collect();
        self.ring = new_ring.clone();
        if added.is_empty() && removed.is_empty() {
            return; // same members, new order — not an application-visible change
        }
        let ctx = self.obs.last_trace();
        for n in &added {
            self.obs.member_changed(ctx, n.0, true);
        }
        for n in &removed {
            self.obs.member_changed(ctx, n.0, false);
        }
        self.events.push_back(SessionEvent::MembershipChanged {
            ring: new_ring.clone(),
            added,
            removed,
        });
    }

    // ------------------------------------------------------------------
    // 911: token recovery and join (§2.3)
    // ------------------------------------------------------------------

    fn enter_starving(&mut self, now: Time) {
        self.events.push_back(SessionEvent::Starving);
        self.obs.tick(now);
        self.obs.starving();
        if self.ring.len() <= 1 {
            // No membership to poll: probe the eligible list for a group
            // to join. If a whole round-robin sweep (and then some) of
            // probes has gone unanswered and we hold no token copy, every
            // copy in the cluster may be gone — e.g. all copy holders
            // crashed while this node was down. No 911 vote can
            // regenerate what nobody remembers, so found a fresh
            // singleton group instead, exactly like
            // [`StartMode::Isolated`]; survivors that bootstrapped
            // concurrently are glued back together by discovery and
            // merge (§2.4).
            let limit = self.cfg.bootstrap_probe_limit;
            if limit > 0 && self.unanswered_probes >= limit && self.last_copy.is_none() {
                self.metrics.bootstrap_foundings += 1;
                let token = Token::founding(Ring::from_iter([self.id]));
                self.last_seen_seq = token.seq;
                self.last_copy = Some(token.clone());
                self.become_eating(now, token);
                return;
            }
            self.send_join_probe(now);
            let retry_at = now + self.cfg.starving_retry;
            self.role.begin_starving_probe(retry_at);
            return;
        }
        self.req_counter += 1;
        let req_id = self.req_counter;
        let call = Call911 {
            from: self.id,
            last_token_seq: self.last_copy_seq(),
            req_id,
        };
        let bytes = SessionMsg::Call911(call).encode_to_bytes();
        let mut awaiting = BTreeSet::new();
        for member in self.ring.iter().filter(|&m| m != self.id) {
            match self.transport.send(now, member, bytes.clone()) {
                Ok(mid) => {
                    self.inflight.insert(mid, SendKind::Call911 { req_id });
                    awaiting.insert(member);
                    self.metrics.calls911_sent += 1;
                }
                Err(_) => {
                    // Unknown address: cannot vote, exclude.
                }
            }
        }
        self.obs.trace(TraceKind::Call911Tx {
            req_id,
            last_seq: self.last_copy_seq(),
            polled: awaiting.len() as u64,
        });
        self.obs.called_911(req_id, self.last_copy_seq());
        let retry_at = now + self.cfg.starving_retry;
        let empty = awaiting.is_empty();
        self.role.begin_starving_vote(req_id, awaiting, retry_at);
        if empty {
            // Nobody to ask: regenerate alone.
            self.regenerate(now);
        }
    }

    /// The STARVING retry fired. Re-calling 911 while a vote is standing
    /// is a *retransmission* of that vote, not a new vote: the local
    /// copy cannot change while STARVING (accepting a token leaves the
    /// state), so the call content is identical and verdicts from the
    /// earlier transmission must still count. Minting a fresh req id on
    /// every retry livelocks when some voter's reply path is slower than
    /// the retry period — e.g. its first NIC is down and every exchange
    /// pays the redundant-address failover — because each retry discards
    /// the grants already in flight. Only the still-awaiting voters are
    /// re-polled.
    fn retry_starving(&mut self, now: Time) {
        let Some((req_id, targets)) = self.role.standing_vote() else {
            // Join probing (no standing vote) or a fully-answered
            // vote: start over.
            self.enter_starving(now);
            return;
        };
        let call = Call911 {
            from: self.id,
            last_token_seq: self.last_copy_seq(),
            req_id,
        };
        let bytes = SessionMsg::Call911(call).encode_to_bytes();
        let polled = targets.len() as u64;
        for member in targets {
            if let Ok(mid) = self.transport.send(now, member, bytes.clone()) {
                self.inflight.insert(mid, SendKind::Call911 { req_id });
                self.metrics.calls911_sent += 1;
            }
        }
        self.obs.tick(now);
        self.obs.trace(TraceKind::Call911Tx {
            req_id,
            last_seq: self.last_copy_seq(),
            polled,
        });
        self.obs.called_911(req_id, self.last_copy_seq());
        self.role.rearm_starving(now + self.cfg.starving_retry);
    }

    fn send_join_probe(&mut self, now: Time) {
        let candidates: Vec<NodeId> = self
            .cfg
            .eligible
            .iter()
            .copied()
            .filter(|&n| n != self.id)
            .collect();
        if candidates.is_empty() {
            return;
        }
        let target = candidates[self.join_probe_idx % candidates.len()];
        self.join_probe_idx += 1;
        self.unanswered_probes = self.unanswered_probes.saturating_add(1);
        self.req_counter += 1;
        let call = Call911 {
            from: self.id,
            last_token_seq: self.last_copy_seq(),
            req_id: self.req_counter,
        };
        if let Ok(mid) =
            self.transport
                .send(now, target, SessionMsg::Call911(call).encode_to_bytes())
        {
            self.inflight.insert(
                mid,
                SendKind::Call911 {
                    req_id: self.req_counter,
                },
            );
            self.metrics.calls911_sent += 1;
            self.obs.tick(now);
            self.obs.trace(TraceKind::Call911Tx {
                req_id: self.req_counter,
                last_seq: self.last_copy_seq(),
                polled: 1,
            });
            self.obs.called_911(self.req_counter, self.last_copy_seq());
        }
    }

    fn on_call911(&mut self, now: Time, _wire_from: NodeId, call: Call911) {
        self.metrics.calls911_received += 1;
        if call.from == self.id {
            return;
        }
        self.obs.trace(TraceKind::Call911Rx {
            from: call.from.0,
            last_seq: call.last_token_seq,
        });
        if !self.ring.contains(call.from) {
            // §2.3: a 911 from a non-member is a join request. This also
            // heals link failures and failure-detector false alarms.
            if self.cfg.eligible.contains(&call.from) && !self.pending_joins.contains(&call.from) {
                self.pending_joins.push(call.from);
                self.obs.trace(TraceKind::JoinRequest { from: call.from.0 });
            }
            // Still answer the vote. We hold no copy of the caller's
            // token lineage, so we cannot deny — and the caller may
            // legitimately have us in its ring while we do not have it
            // in ours: a member that crashed and restarted before the
            // group purged it stays reachable (so failure-on-delivery
            // never excludes it) but would otherwise never reply,
            // hanging every 911 vote in the old group forever.
            self.obs.trace(TraceKind::Verdict911Tx {
                to: call.from.0,
                granted: true,
                newer_seq: 0,
            });
            let reply = Reply911 {
                from: self.id,
                req_id: call.req_id,
                verdict: Verdict911::Grant,
            };
            if let Ok(mid) = self.transport.send(
                now,
                call.from,
                SessionMsg::Reply911(reply).encode_to_bytes(),
            ) {
                self.inflight.insert(mid, SendKind::Reply);
            }
            return;
        }
        // Regeneration vote. Deny if the token demonstrably exists here
        // (we hold or are forwarding it), if our local copy is more
        // recent, or — on a tie — if our id is lower (bootstrap
        // tie-break; distinct real copies always have distinct seqs).
        let my_copy = self.last_copy_seq();
        let verdict = if self.role.holds_token() || self.forwarding.is_some() {
            Verdict911::Deny {
                newer_seq: self.last_seen_seq,
            }
        } else if my_copy > call.last_token_seq
            || (my_copy == call.last_token_seq && self.id < call.from)
        {
            Verdict911::Deny { newer_seq: my_copy }
        } else {
            Verdict911::Grant
        };
        let (granted, newer_seq) = match &verdict {
            Verdict911::Grant => (true, 0),
            Verdict911::Deny { newer_seq } => (false, *newer_seq),
        };
        if !granted {
            self.metrics.denials_911 += 1;
        }
        self.obs.trace(TraceKind::Verdict911Tx {
            to: call.from.0,
            granted,
            newer_seq,
        });
        let reply = Reply911 {
            from: self.id,
            req_id: call.req_id,
            verdict,
        };
        if let Ok(mid) = self.transport.send(
            now,
            call.from,
            SessionMsg::Reply911(reply).encode_to_bytes(),
        ) {
            self.inflight.insert(mid, SendKind::Reply);
        }
    }

    fn on_reply911(&mut self, now: Time, reply: Reply911) {
        let outcome = self
            .role
            .on_verdict(reply.from, reply.req_id, &reply.verdict, now);
        if outcome == VerdictOutcome::Ignored {
            return; // not voting, or a stale verdict from an earlier call
        }
        self.obs.trace(TraceKind::Verdict911Rx {
            from: reply.from.0,
            granted: matches!(reply.verdict, Verdict911::Grant),
        });
        match outcome {
            // Ignored returned above; grouping it with Waiting keeps the
            // match total without a panicking arm.
            VerdictOutcome::Ignored | VerdictOutcome::Waiting => {}
            VerdictOutcome::Won => self.regenerate(now),
            VerdictOutcome::Denied => {
                // Someone has a newer copy or the token itself; it (or
                // its holder) will keep the ring alive. The role is back
                // to HUNGRY with a fresh timeout.
                self.obs.starving_resolved();
            }
        }
    }

    /// Won the vote: regenerate the token from our local copy (§2.3).
    fn regenerate(&mut self, now: Time) {
        let Some(excluded) = self.role.win_vote(now) else {
            return;
        };
        let mut token = self
            .last_copy
            .clone()
            .unwrap_or_else(|| Token::founding(Ring::from_iter([self.id])));
        for x in excluded {
            token.ring.remove(x);
        }
        token.ring.push(self.id); // ensure we are present
        token.tbm = false;
        // Out-rank every live node's acceptance mark (see module docs).
        let parent_ctx = token.trace;
        token.seq = token.seq.max(self.last_seen_seq) + 2;
        // Regeneration mints a fresh circulation, causally descending
        // from the dead lineage's last hop we hold a copy of.
        token.trace = TraceCtx::mint(self.id, token.seq, parent_ctx.hop);
        self.last_seen_seq = token.seq;
        self.last_copy = Some(token.clone());
        self.metrics.regenerations += 1;
        self.obs.tick(now);
        self.obs.hop_minted(parent_ctx, token.trace);
        self.obs.recovered(token.seq);
        self.obs
            .trace(TraceKind::TokenRegenerated { seq: token.seq });
        self.events
            .push_back(SessionEvent::TokenRegenerated { seq: token.seq });
        self.become_eating(now, token);
    }

    // ------------------------------------------------------------------
    // Discovery and merge (§2.4)
    // ------------------------------------------------------------------

    fn has_absent_eligible(&self) -> bool {
        self.cfg
            .eligible
            .iter()
            .any(|&n| n != self.id && !self.ring.contains(n))
    }

    fn send_beacons(&mut self, now: Time) {
        // Only a node that is actually part of a functioning group (it
        // has or has seen a token) advertises itself.
        if self.last_copy.is_none() {
            return;
        }
        let beacon = BodyOdor {
            from: self.id,
            group: self.group_id(),
        };
        let bytes = SessionMsg::BodyOdor(beacon).encode_to_bytes();
        let absent: Vec<NodeId> = self
            .cfg
            .eligible
            .iter()
            .copied()
            .filter(|&n| n != self.id && !self.ring.contains(n))
            .collect();
        for n in absent {
            if let Ok(mid) = self.transport.send(now, n, bytes.clone()) {
                self.inflight.insert(mid, SendKind::Beacon);
                self.metrics.beacons_sent += 1;
            }
        }
    }

    fn on_beacon(&mut self, b: BodyOdor) {
        self.metrics.beacons_received += 1;
        self.obs.trace(TraceKind::BeaconRx {
            from: b.from.0,
            group: b.group.0 .0,
        });
        if b.from == self.id || self.ring.contains(b.from) {
            return;
        }
        if !self.cfg.eligible.contains(&b.from) {
            return;
        }
        // §2.4 tie-break: the beacon is a join request iff the sender's
        // group id is lower than ours — the higher group hands its token
        // down, so multi-way merges cannot deadlock.
        if b.group < self.group_id() {
            self.merge_target = Some(b.from);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raincore_types::Duration;

    fn cfg(n: u32) -> SessionConfig {
        SessionConfig::for_cluster(n)
    }

    fn mk(id: u32, n: u32, start: StartMode) -> SessionNode {
        let nodes: Vec<NodeId> = (0..n).map(NodeId).collect();
        SessionNode::new(
            NodeId(id),
            Incarnation::FIRST,
            cfg(n),
            TransportConfig::default(),
            vec![Addr::primary(NodeId(id))],
            PeerTable::full_mesh(nodes, 1),
            start,
            Time::ZERO,
        )
        .unwrap()
    }

    fn drain(n: &mut SessionNode) -> Vec<SessionEvent> {
        let mut out = vec![];
        while let Some(e) = n.poll_event() {
            out.push(e);
        }
        out
    }

    #[test]
    fn lowest_id_founds_token() {
        let ring = Ring::from([0, 1, 2]);
        let a = mk(0, 3, StartMode::Founding(ring.clone()));
        assert!(a.is_eating());
        assert_eq!(a.state_name(), "EATING");
        let b = mk(1, 3, StartMode::Founding(ring));
        assert!(!b.is_eating());
        assert_eq!(b.state_name(), "HUNGRY");
    }

    #[test]
    fn founding_requires_self_in_ring() {
        let nodes: Vec<NodeId> = (0..3).map(NodeId).collect();
        let err = SessionNode::new(
            NodeId(9),
            Incarnation::FIRST,
            cfg(3),
            TransportConfig::default(),
            vec![Addr::primary(NodeId(9))],
            PeerTable::full_mesh(nodes, 1),
            StartMode::Founding(Ring::from([0, 1, 2])),
            Time::ZERO,
        )
        .unwrap_err();
        assert!(matches!(err, Error::Config(_)));
    }

    #[test]
    fn isolated_node_is_singleton_group() {
        let a = mk(5, 8, StartMode::Isolated);
        assert!(a.is_eating());
        assert_eq!(a.ring().as_slice(), &[NodeId(5)]);
        assert_eq!(a.group_id(), GroupId(NodeId(5)));
    }

    #[test]
    fn singleton_multicast_delivers_on_self_pass() {
        let mut a = mk(0, 1, StartMode::Isolated);
        let seq = a
            .multicast(DeliveryMode::Agreed, Bytes::from_static(b"solo"))
            .unwrap();
        assert_eq!(seq, OriginSeq(0));
        // Self-pass happens at the token-hold deadline.
        a.on_tick(Time::ZERO + a.config().token_hold);
        let evs = drain(&mut a);
        assert!(
            evs.iter().any(|e| matches!(e, SessionEvent::Delivery(d) if d.payload == Bytes::from_static(b"solo"))),
            "got {evs:?}"
        );
        assert!(evs
            .iter()
            .any(|e| matches!(e, SessionEvent::MulticastAtomic { seq: OriginSeq(0) })));
        assert_eq!(a.metrics().self_passes, 1);
    }

    #[test]
    fn singleton_safe_multicast_also_completes() {
        let mut a = mk(0, 1, StartMode::Isolated);
        a.multicast(DeliveryMode::Safe, Bytes::from_static(b"safe"))
            .unwrap();
        a.on_tick(Time::ZERO + a.config().token_hold);
        // Safe needs a second look: one more self-pass.
        a.on_tick(Time::ZERO + a.config().token_hold.saturating_mul(2));
        let evs = drain(&mut a);
        assert!(
            evs.iter().any(|e| matches!(e, SessionEvent::Delivery(_))),
            "{evs:?}"
        );
        assert!(evs
            .iter()
            .any(|e| matches!(e, SessionEvent::MulticastAtomic { .. })));
    }

    #[test]
    fn payload_size_enforced() {
        let mut a = mk(0, 1, StartMode::Isolated);
        let huge = Bytes::from(vec![0u8; a.config().max_payload + 1]);
        assert!(matches!(
            a.multicast(DeliveryMode::Agreed, huge),
            Err(Error::PayloadTooLarge { .. })
        ));
    }

    #[test]
    fn master_lock_holds_the_ring() {
        let mut a = mk(0, 1, StartMode::Isolated);
        a.request_master().unwrap();
        let evs = drain(&mut a);
        assert!(
            evs.contains(&SessionEvent::MasterAcquired),
            "eating node acquires at once"
        );
        assert!(a.holds_master());
        // Deadline passes but the lock pins the token.
        a.on_tick(Time::ZERO + Duration::from_secs(10));
        assert!(a.is_eating());
        assert_eq!(a.metrics().self_passes, 0);
        a.release_master(Time::ZERO + Duration::from_secs(10))
            .unwrap();
        assert!(drain(&mut a).contains(&SessionEvent::MasterReleased));
        assert!(!a.holds_master());
        assert_eq!(a.metrics().self_passes, 1, "release forwards the token");
        assert!(a.release_master(Time::ZERO).is_err());
    }

    #[test]
    fn hungry_node_starves_and_regenerates_alone() {
        // Node 1 in a 2-ring; node 0 never speaks (it is not running).
        let mut b = mk(1, 2, StartMode::Founding(Ring::from([0, 1])));
        assert_eq!(b.state_name(), "HUNGRY");
        let t1 = Time::ZERO + b.config().hungry_timeout;
        b.on_tick(t1);
        assert_eq!(b.state_name(), "STARVING");
        assert!(drain(&mut b).contains(&SessionEvent::Starving));
        // The 911 to node 0 fails on delivery → node 0 excluded → b
        // regenerates as a singleton.
        let mut now = t1;
        for _ in 0..200 {
            if let Some(w) = b.next_wakeup() {
                now = w.max(now);
                b.on_tick(now);
                while b.poll_outgoing().is_some() {} // node 0 is a black hole
            }
            if b.is_eating() {
                break;
            }
        }
        assert!(
            b.is_eating(),
            "regenerated after failure-on-delivery of the 911"
        );
        assert_eq!(b.ring().as_slice(), &[NodeId(1)]);
        assert_eq!(b.metrics().regenerations, 1);
        let evs = drain(&mut b);
        assert!(evs
            .iter()
            .any(|e| matches!(e, SessionEvent::TokenRegenerated { .. })));
    }

    #[test]
    fn deny_when_copy_is_newer() {
        let mut a = mk(0, 3, StartMode::Founding(Ring::from([0, 1, 2])));
        // a founded and is EATING → must deny.
        a.on_call911(
            Time::ZERO,
            NodeId(1),
            Call911 {
                from: NodeId(1),
                last_token_seq: 0,
                req_id: 1,
            },
        );
        let out = a.poll_outgoing().expect("a reply datagram");
        // The reply is a transport DATA frame; decode through the frame.
        let f = raincore_transport::Frame::decode_from_bytes(&out.payload).unwrap();
        let raincore_transport::Frame::Data { payload, .. } = f else {
            panic!()
        };
        let SessionMsg::Reply911(r) = SessionMsg::decode_from_bytes(&payload).unwrap() else {
            panic!()
        };
        assert!(matches!(r.verdict, Verdict911::Deny { .. }));
    }

    #[test]
    fn equal_seq_tie_breaks_toward_lower_id() {
        // Node 1 (HUNGRY, copy seq 0) votes on calls with seq 0.
        let b = mk(1, 6, StartMode::Founding(Ring::from([1, 2, 5])));
        assert_eq!(b.state_name(), "EATING"); // 1 is lowest → founded
                                              // Make a non-eating voter: node 2.
        let mut c = mk(2, 6, StartMode::Founding(Ring::from([1, 2, 5])));
        assert_eq!(c.state_name(), "HUNGRY");
        // Caller id 5 > voter id 2 → voter denies (lower id has priority).
        c.on_call911(
            Time::ZERO,
            NodeId(5),
            Call911 {
                from: NodeId(5),
                last_token_seq: 0,
                req_id: 7,
            },
        );
        let out = c.poll_outgoing().expect("reply");
        let f = raincore_transport::Frame::decode_from_bytes(&out.payload).unwrap();
        let raincore_transport::Frame::Data { payload, .. } = f else {
            panic!()
        };
        let SessionMsg::Reply911(r) = SessionMsg::decode_from_bytes(&payload).unwrap() else {
            panic!()
        };
        assert!(matches!(r.verdict, Verdict911::Deny { .. }));
        // Caller id 1 < voter id 2 → but 1 is a member… caller 1 with
        // equal seq gets a Grant from 2.
        let mut c2 = mk(2, 6, StartMode::Founding(Ring::from([1, 2, 5])));
        c2.on_call911(
            Time::ZERO,
            NodeId(1),
            Call911 {
                from: NodeId(1),
                last_token_seq: 0,
                req_id: 8,
            },
        );
        let out = c2.poll_outgoing().expect("reply");
        let f = raincore_transport::Frame::decode_from_bytes(&out.payload).unwrap();
        let raincore_transport::Frame::Data { payload, .. } = f else {
            panic!()
        };
        let SessionMsg::Reply911(r) = SessionMsg::decode_from_bytes(&payload).unwrap() else {
            panic!()
        };
        assert_eq!(r.verdict, Verdict911::Grant);
        let _ = b;
    }

    #[test]
    fn call911_from_non_member_is_join_request() {
        let mut a = mk(0, 4, StartMode::Founding(Ring::from([0, 1])));
        a.on_call911(
            Time::ZERO,
            NodeId(3),
            Call911 {
                from: NodeId(3),
                last_token_seq: 0,
                req_id: 1,
            },
        );
        // The vote is still answered — with a Grant, since we hold no
        // copy of the caller's lineage. A member that crashed and
        // restarted before the group purged it would otherwise hang
        // every 911 vote in its old group forever.
        let out = a.poll_outgoing().expect("non-member call gets a verdict");
        let f = raincore_transport::Frame::decode_from_bytes(&out.payload).unwrap();
        let raincore_transport::Frame::Data { payload, .. } = f else {
            panic!()
        };
        let SessionMsg::Reply911(r) = SessionMsg::decode_from_bytes(&payload).unwrap() else {
            panic!()
        };
        assert_eq!(r.verdict, Verdict911::Grant);
        // Next pass admits the joiner right after us: ring 0,3,1.
        a.on_tick(Time::ZERO + a.config().token_hold);
        assert_eq!(a.ring().as_slice(), &[NodeId(0), NodeId(3), NodeId(1)]);
    }

    #[test]
    fn ineligible_node_cannot_join() {
        let mut a = mk(0, 2, StartMode::Founding(Ring::from([0, 1])));
        a.on_call911(
            Time::ZERO,
            NodeId(77),
            Call911 {
                from: NodeId(77),
                last_token_seq: 0,
                req_id: 1,
            },
        );
        a.on_tick(Time::ZERO + a.config().token_hold);
        assert!(!a.ring().contains(NodeId(77)));
    }

    #[test]
    fn stale_token_discarded() {
        let mut a = mk(0, 2, StartMode::Founding(Ring::from([0, 1])));
        let seen = a.metrics().tokens_received;
        // A token with seq 1 == our last_seen (we founded with seq 1).
        a.on_token(Time::ZERO, Token::founding(Ring::from([0, 1])));
        assert_eq!(a.metrics().stale_tokens_dropped, 1);
        assert_eq!(a.metrics().tokens_received, seen);
    }

    #[test]
    fn token_without_self_not_touched() {
        let mut b = mk(1, 3, StartMode::Founding(Ring::from([0, 1, 2])));
        let mut t = Token::founding(Ring::from([0, 2]));
        t.seq = 50;
        b.on_token(Time::ZERO, t);
        assert_eq!(b.state_name(), "HUNGRY");
        assert_eq!(b.metrics().stale_tokens_dropped, 1);
    }

    #[test]
    fn beacon_from_lower_group_triggers_merge_handoff() {
        // Node 2 is an isolated singleton group g2.
        let mut c = mk(2, 4, StartMode::Isolated);
        // Beacon from node 0, group g0 < g2 → on our next pass we hand a
        // TBM token to node 0.
        c.on_beacon(BodyOdor {
            from: NodeId(0),
            group: GroupId(NodeId(0)),
        });
        c.on_tick(Time::ZERO + c.config().token_hold);
        let d = c.poll_outgoing().expect("TBM token datagram");
        let f = raincore_transport::Frame::decode_from_bytes(&d.payload).unwrap();
        let raincore_transport::Frame::Data { payload, .. } = f else {
            panic!()
        };
        let SessionMsg::Token(t) = SessionMsg::decode_from_bytes(&payload).unwrap() else {
            panic!()
        };
        assert!(t.tbm);
        assert!(t.ring.contains(NodeId(0)));
        assert!(t.ring.contains(NodeId(2)));
        assert_eq!(d.dst.node, NodeId(0));
    }

    #[test]
    fn beacon_from_higher_group_ignored() {
        let mut a = mk(0, 4, StartMode::Isolated);
        a.on_beacon(BodyOdor {
            from: NodeId(3),
            group: GroupId(NodeId(3)),
        });
        a.on_tick(Time::ZERO + a.config().token_hold);
        // Self-pass, no TBM handoff.
        assert!(a.is_eating());
        assert_eq!(a.metrics().self_passes, 1);
        assert!(!a.ring().contains(NodeId(3)));
    }

    #[test]
    fn tbm_token_merges_with_held_token() {
        // Node 0 is isolated (eating its own token, group g0).
        let mut a = mk(0, 4, StartMode::Isolated);
        // TBM token arrives from group {2,3} with node 0 added.
        let mut tbm = Token::founding(Ring::from([2, 3, 0]));
        tbm.seq = 9;
        tbm.tbm = true;
        a.on_token(Time::ZERO, tbm);
        assert!(a.is_eating());
        assert_eq!(a.metrics().merges, 1);
        let evs = drain(&mut a);
        assert!(evs.iter().any(|e| matches!(
            e,
            SessionEvent::Merged {
                absorbed: GroupId(NodeId(2))
            }
        )));
        assert!(a.ring().contains(NodeId(2)));
        assert!(a.ring().contains(NodeId(3)));
        assert_eq!(a.group_id(), GroupId(NodeId(0)));
        // Merged seq out-ranks both sides.
        assert!(a.last_copy_seq() >= 10);
    }

    #[test]
    fn joiner_accepts_tbm_directly() {
        let mut j = mk(3, 4, StartMode::Joining);
        assert_eq!(j.state_name(), "STARVING");
        let mut tbm = Token::founding(Ring::from([0, 1, 3]));
        tbm.seq = 4;
        tbm.tbm = true;
        j.on_token(Time::ZERO, tbm);
        assert!(j.is_eating());
        assert!(j.ring().contains(NodeId(0)));
    }

    #[test]
    fn critical_resource_loss_shuts_down() {
        let mut a = mk(0, 2, StartMode::Isolated);
        a.add_critical_resource("uplink");
        a.set_resource(Time::ZERO, "uplink", false);
        assert!(a.is_down());
        let evs = drain(&mut a);
        assert!(evs
            .iter()
            .any(|e| matches!(e, SessionEvent::ShutDown { reason } if reason.contains("uplink"))));
        // Down node refuses everything.
        assert!(matches!(
            a.multicast(DeliveryMode::Agreed, Bytes::new()),
            Err(Error::ShutDown)
        ));
        assert_eq!(a.next_wakeup(), None);
    }

    #[test]
    fn leaving_while_eating_forwards_token_without_self() {
        let ring = Ring::from([0, 1, 2]);
        let mut a = mk(0, 3, StartMode::Founding(ring));
        assert!(a.is_eating());
        a.leave(Time::ZERO);
        assert!(a.is_down());
        let d = a.poll_outgoing().expect("token handoff on leave");
        assert_eq!(d.dst.node, NodeId(1));
        let f = raincore_transport::Frame::decode_from_bytes(&d.payload).unwrap();
        let raincore_transport::Frame::Data { payload, .. } = f else {
            panic!()
        };
        let SessionMsg::Token(t) = SessionMsg::decode_from_bytes(&payload).unwrap() else {
            panic!()
        };
        assert!(!t.ring.contains(NodeId(0)));
        assert_eq!(t.ring.as_slice(), &[NodeId(1), NodeId(2)]);
    }

    #[test]
    fn next_wakeup_covers_state_deadlines() {
        let a = mk(1, 2, StartMode::Founding(Ring::from([0, 1])));
        // HUNGRY → wakeup at hungry timeout (beacons not needed: full ring).
        assert_eq!(
            a.next_wakeup(),
            Some(Time::ZERO + a.config().hungry_timeout)
        );
        let b = mk(0, 1, StartMode::Isolated);
        assert_eq!(b.next_wakeup(), Some(Time::ZERO + b.config().token_hold));
    }

    #[test]
    fn beacons_go_to_absent_eligible_only() {
        let mut a = mk(0, 3, StartMode::Isolated); // eligible {0,1,2}, ring {0}
        a.on_tick(Time::ZERO + a.config().beacon_period);
        let mut dsts = vec![];
        while let Some(d) = a.poll_outgoing() {
            let f = raincore_transport::Frame::decode_from_bytes(&d.payload).unwrap();
            if let raincore_transport::Frame::Data { payload, .. } = f {
                if let Ok(SessionMsg::BodyOdor(b)) = SessionMsg::decode_from_bytes(&payload) {
                    assert_eq!(b.from, NodeId(0));
                    assert_eq!(b.group, GroupId(NodeId(0)));
                    dsts.push(d.dst.node);
                }
            }
        }
        dsts.sort();
        assert_eq!(dsts, vec![NodeId(1), NodeId(2)]);
        assert_eq!(a.metrics().beacons_sent, 2);
    }
}

#[cfg(test)]
mod holdback_tests {
    //! Direct token-injection tests of the hold-back delivery discipline
    //! (§2.6 cross-mode total order).

    use super::*;
    use raincore_types::{Attached, Duration};

    fn mk(id: u32) -> SessionNode {
        let nodes: Vec<NodeId> = (0..3).map(NodeId).collect();
        SessionNode::new(
            NodeId(id),
            Incarnation::FIRST,
            SessionConfig::for_cluster(3),
            TransportConfig::default(),
            vec![Addr::primary(NodeId(id))],
            PeerTable::full_mesh(nodes, 1),
            StartMode::Founding(Ring::from([0, 1, 2])),
            Time::ZERO,
        )
        .unwrap()
    }

    fn deliveries(n: &mut SessionNode) -> Vec<(NodeId, OriginSeq)> {
        let mut out = vec![];
        while let Some(ev) = n.poll_event() {
            if let SessionEvent::Delivery(d) = ev {
                out.push((d.origin, d.seq));
            }
        }
        out
    }

    fn attached(origin: u32, seq: u64, mode: DeliveryMode, seen: &[u32]) -> Attached {
        let mut a = Attached::new(
            NodeId(origin),
            OriginSeq(seq),
            mode,
            Bytes::from_static(b"p"),
        );
        a.seen = seen.iter().map(|&i| NodeId(i)).collect();
        a
    }

    #[test]
    fn incomplete_safe_message_blocks_later_agreed() {
        let mut n = mk(1); // HUNGRY (node 0 founded)
        let mut t = Token::founding(Ring::from([0, 1, 2]));
        t.seq = 10;
        t.msgs = vec![
            attached(0, 0, DeliveryMode::Safe, &[0]), // not seen by all yet
            attached(2, 0, DeliveryMode::Agreed, &[2, 0]),
        ]
        .into();
        n.on_token(Time::ZERO, t);
        assert!(n.is_eating());
        assert_eq!(
            deliveries(&mut n),
            vec![],
            "safe head blocks the agreed message"
        );

        // Next round: the safe message is now seen by everyone.
        let mut t = Token::founding(Ring::from([0, 1, 2]));
        t.seq = 13;
        t.msgs = vec![
            attached(0, 0, DeliveryMode::Safe, &[0, 2, 1]),
            attached(2, 0, DeliveryMode::Agreed, &[2, 0, 1]),
        ]
        .into();
        n.on_token(Time::ZERO + Duration::from_millis(20), t);
        assert_eq!(
            deliveries(&mut n),
            vec![(NodeId(0), OriginSeq(0)), (NodeId(2), OriginSeq(0))],
            "both delivered, in token order"
        );
    }

    #[test]
    fn agreed_before_safe_delivers_immediately() {
        let mut n = mk(1);
        let mut t = Token::founding(Ring::from([0, 1, 2]));
        t.seq = 10;
        t.msgs = vec![
            attached(0, 0, DeliveryMode::Agreed, &[0]),
            attached(0, 1, DeliveryMode::Safe, &[0]),
        ]
        .into();
        n.on_token(Time::ZERO, t);
        assert_eq!(
            deliveries(&mut n),
            vec![(NodeId(0), OriginSeq(0))],
            "the agreed head delivers; only the safe tail waits"
        );
    }

    #[test]
    fn own_attachment_behind_blocked_safe_waits_too() {
        let mut n = mk(1);
        // Queue a local multicast while hungry.
        n.multicast(DeliveryMode::Agreed, Bytes::from_static(b"mine"))
            .unwrap();
        // Token arrives with a blocked safe message at the head.
        let mut t = Token::founding(Ring::from([0, 1, 2]));
        t.seq = 10;
        t.msgs = vec![attached(0, 0, DeliveryMode::Safe, &[0])].into();
        n.on_token(Time::ZERO, t);
        // Pass the token: our message attaches *behind* the safe one.
        n.on_tick(Time::ZERO + n.config().token_hold);
        assert_eq!(
            deliveries(&mut n),
            vec![],
            "own agreed message must not jump the blocked safe message"
        );
        // Once the safe message completes, both deliver in order.
        let mut t = Token::founding(Ring::from([0, 1, 2]));
        t.seq = 20;
        t.msgs = vec![
            attached(0, 0, DeliveryMode::Safe, &[0, 1, 2]),
            attached(1, 0, DeliveryMode::Agreed, &[1, 0, 2]),
        ]
        .into();
        n.on_token(Time::ZERO + Duration::from_millis(50), t);
        assert_eq!(
            deliveries(&mut n),
            vec![(NodeId(0), OriginSeq(0)), (NodeId(1), OriginSeq(0))]
        );
    }

    #[test]
    fn duplicate_attachment_across_rounds_delivers_once() {
        let mut n = mk(1);
        let mut t = Token::founding(Ring::from([0, 1, 2]));
        t.seq = 10;
        t.msgs = vec![attached(0, 0, DeliveryMode::Agreed, &[0])].into();
        n.on_token(Time::ZERO, t);
        // The same message rides the next round too (not yet retired).
        let mut t = Token::founding(Ring::from([0, 1, 2]));
        t.seq = 13;
        t.msgs = vec![attached(0, 0, DeliveryMode::Agreed, &[0, 1, 2])].into();
        n.on_token(Time::ZERO + Duration::from_millis(20), t);
        assert_eq!(
            deliveries(&mut n).len(),
            1,
            "exactly-once despite re-seeing it"
        );
    }

    #[test]
    fn safe_readiness_survives_token_retirement() {
        // A safe message observed incomplete, then the token arrives with
        // it already complete AND retires it in the same pass at another
        // node — this node must still deliver from its hold-back copy.
        let mut n = mk(1);
        let mut t = Token::founding(Ring::from([0, 1, 2]));
        t.seq = 10;
        t.msgs = vec![attached(0, 0, DeliveryMode::Safe, &[0])].into();
        n.on_token(Time::ZERO, t);
        assert_eq!(deliveries(&mut n), vec![]);
        // Next round: message now seen by all (still on token).
        let mut t = Token::founding(Ring::from([0, 1, 2]));
        t.seq = 13;
        t.msgs = vec![attached(0, 0, DeliveryMode::Safe, &[0, 2, 1])].into();
        n.on_token(Time::ZERO + Duration::from_millis(20), t);
        assert_eq!(deliveries(&mut n), vec![(NodeId(0), OriginSeq(0))]);
    }
}

#[cfg(test)]
mod bulk_tests {
    //! Two-phase (out-of-band) delivery: id manifests ride the token,
    //! payloads travel around it (DESIGN.md §13).

    use super::*;
    use raincore_types::Duration;

    fn mk_bulk(id: u32, mutate: impl FnOnce(&mut SessionConfig)) -> SessionNode {
        let nodes: Vec<NodeId> = (0..3).map(NodeId).collect();
        let mut cfg = SessionConfig::for_cluster(3);
        mutate(&mut cfg);
        SessionNode::new(
            NodeId(id),
            Incarnation::FIRST,
            cfg,
            TransportConfig::default(),
            vec![Addr::primary(NodeId(id))],
            PeerTable::full_mesh(nodes, 1),
            StartMode::Founding(Ring::from([0, 1, 2])),
            Time::ZERO,
        )
        .unwrap()
    }

    fn oob(origin: u32, seq: u64, mode: DeliveryMode, len: u64, seen: &[u32]) -> Attached {
        let mut a = Attached::new_oob(NodeId(origin), OriginSeq(seq), mode, len);
        a.seen = seen.iter().map(|&i| NodeId(i)).collect();
        a
    }

    fn inline(origin: u32, seq: u64, mode: DeliveryMode, seen: &[u32]) -> Attached {
        let mut a = Attached::new(
            NodeId(origin),
            OriginSeq(seq),
            mode,
            Bytes::from_static(b"inl"),
        );
        a.seen = seen.iter().map(|&i| NodeId(i)).collect();
        a
    }

    fn deliveries(n: &mut SessionNode) -> Vec<(NodeId, OriginSeq, Bytes)> {
        let mut out = vec![];
        while let Some(ev) = n.poll_event() {
            if let SessionEvent::Delivery(d) = ev {
                out.push((d.origin, d.seq, d.payload));
            }
        }
        out
    }

    /// Decoded session messages drained from the outgoing queue, with
    /// their destinations.
    fn outgoing_msgs(n: &mut SessionNode) -> Vec<(NodeId, SessionMsg)> {
        let mut out = vec![];
        while let Some(d) = n.poll_outgoing() {
            let f = raincore_transport::Frame::decode_from_bytes(&d.payload).unwrap();
            if let raincore_transport::Frame::Data {
                payload,
                frag_index: 0,
                frag_count: 1,
                ..
            } = f
            {
                if let Ok(m) = SessionMsg::decode_from_bytes(&payload) {
                    out.push((d.dst.node, m));
                }
            }
        }
        out
    }

    #[test]
    fn manifest_without_payload_blocks_until_frame_arrives() {
        let mut n = mk_bulk(1, |_| {});
        let mut t = Token::founding(Ring::from([0, 1, 2]));
        t.seq = 10;
        t.msgs = vec![
            oob(0, 0, DeliveryMode::Agreed, 4, &[0]),
            inline(2, 0, DeliveryMode::Agreed, &[2, 0]),
        ]
        .into();
        n.on_token(Time::ZERO, t);
        assert_eq!(
            deliveries(&mut n),
            vec![],
            "ordered id without payload must block the queue"
        );
        // The bulk frame arrives out of band: both deliver, token order.
        n.on_bulk(BulkData {
            origin: NodeId(0),
            seq: OriginSeq(0),
            payload: Bytes::from_static(b"wxyz"),
        });
        let got = deliveries(&mut n);
        assert_eq!(got.len(), 2);
        assert_eq!(
            got[0],
            (NodeId(0), OriginSeq(0), Bytes::from_static(b"wxyz"))
        );
        assert_eq!(got[1].0, NodeId(2));
    }

    #[test]
    fn payload_arriving_before_manifest_delivers_at_ordering_time() {
        let mut n = mk_bulk(1, |_| {});
        // Bulk frames race the token by design.
        n.on_bulk(BulkData {
            origin: NodeId(0),
            seq: OriginSeq(0),
            payload: Bytes::from_static(b"early"),
        });
        assert_eq!(deliveries(&mut n), vec![], "no delivery before ordering");
        let mut t = Token::founding(Ring::from([0, 1, 2]));
        t.seq = 10;
        t.msgs = vec![oob(0, 0, DeliveryMode::Agreed, 5, &[0])].into();
        n.on_token(Time::ZERO, t);
        assert_eq!(
            deliveries(&mut n),
            vec![(NodeId(0), OriginSeq(0), Bytes::from_static(b"early"))]
        );
    }

    #[test]
    fn oob_entry_marked_seen_only_with_payload_in_hand() {
        let mut n = mk_bulk(1, |_| {});
        let mut t = Token::founding(Ring::from([0, 1, 2]));
        t.seq = 10;
        t.msgs = vec![oob(0, 0, DeliveryMode::Agreed, 4, &[0])].into();
        n.on_token(Time::ZERO, t);
        n.on_tick(Time::ZERO + n.config().token_hold);
        let toks: Vec<_> = outgoing_msgs(&mut n)
            .into_iter()
            .filter_map(|(_, m)| match m {
                SessionMsg::Token(t) => Some(t),
                _ => None,
            })
            .collect();
        let entry = toks[0].msgs.iter().next().unwrap();
        assert!(
            !entry.seen.contains(&NodeId(1)),
            "must not acknowledge a payload we do not hold: {:?}",
            entry.seen
        );
        // With the payload in hand the next pass acknowledges.
        n.on_bulk(BulkData {
            origin: NodeId(0),
            seq: OriginSeq(0),
            payload: Bytes::from_static(b"wxyz"),
        });
        let mut t = Token::founding(Ring::from([0, 1, 2]));
        t.seq = 20;
        t.msgs = vec![oob(0, 0, DeliveryMode::Agreed, 4, &[0])].into();
        n.on_token(Time::ZERO + Duration::from_millis(40), t);
        n.on_tick(Time::ZERO + Duration::from_millis(40) + n.config().token_hold);
        let toks: Vec<_> = outgoing_msgs(&mut n)
            .into_iter()
            .filter_map(|(_, m)| match m {
                SessionMsg::Token(t) => Some(t),
                _ => None,
            })
            .collect();
        let entry = toks[0].msgs.iter().next().unwrap();
        assert!(entry.seen.contains(&NodeId(1)));
    }

    #[test]
    fn origin_splits_large_payloads_and_piggybacks_small_ones() {
        // Node 0 founds the 3-ring and holds the token.
        let mut n = mk_bulk(0, |c| c.bulk_threshold = 8);
        n.multicast(DeliveryMode::Agreed, Bytes::from(vec![7u8; 64]))
            .unwrap();
        n.multicast(DeliveryMode::Agreed, Bytes::from_static(b"tiny"))
            .unwrap();
        n.on_tick(Time::ZERO + n.config().token_hold);
        let msgs = outgoing_msgs(&mut n);
        let bulk_dsts: Vec<NodeId> = msgs
            .iter()
            .filter_map(|(dst, m)| match m {
                SessionMsg::Bulk(b) => {
                    assert_eq!(b.origin, NodeId(0));
                    assert_eq!(b.payload.len(), 64);
                    Some(*dst)
                }
                _ => None,
            })
            .collect();
        assert_eq!(bulk_dsts, vec![NodeId(1), NodeId(2)]);
        assert_eq!(n.metrics().bulk_frames_sent, 2);
        let token = msgs
            .iter()
            .find_map(|(_, m)| match m {
                SessionMsg::Token(t) => Some(t.clone()),
                _ => None,
            })
            .expect("token pass");
        let entries: Vec<&Attached> = token.msgs.iter().collect();
        assert_eq!(entries.len(), 2);
        assert!(entries[0].is_oob(), "64B >= threshold goes out-of-band");
        assert_eq!(entries[0].payload_len(), 64);
        assert!(!entries[1].is_oob(), "4B < threshold stays piggybacked");
        assert_eq!(
            token.payload_bytes(),
            4,
            "token carries only the inline payload bytes"
        );
    }

    #[test]
    fn missing_payload_fires_rotating_nack_pulls() {
        let mut n = mk_bulk(1, |_| {});
        let mut t = Token::founding(Ring::from([0, 1, 2]));
        t.seq = 10;
        // Node 2 also holds the payload (it is in the seen set).
        t.msgs = vec![oob(0, 0, DeliveryMode::Agreed, 4, &[0, 2])].into();
        n.on_token(Time::ZERO, t);
        let pull = n.config().bulk_pull_timeout;
        assert!(
            n.next_wakeup().is_some_and(|w| w <= Time::ZERO + pull),
            "wakeup must cover the pull deadline"
        );
        let nack_dsts = |msgs: Vec<(NodeId, SessionMsg)>| -> Vec<NodeId> {
            msgs.into_iter()
                .filter_map(|(dst, m)| match m {
                    SessionMsg::BulkNack(nk) => {
                        assert_eq!(nk.from, NodeId(1));
                        assert_eq!((nk.origin, nk.seq), (NodeId(0), OriginSeq(0)));
                        Some(dst)
                    }
                    _ => None,
                })
                .collect()
        };
        n.on_tick(Time::ZERO + pull);
        assert_eq!(nack_dsts(outgoing_msgs(&mut n)), vec![NodeId(0)]);
        n.on_tick(Time::ZERO + pull + pull);
        assert_eq!(
            nack_dsts(outgoing_msgs(&mut n)),
            vec![NodeId(2)],
            "second pull rotates to another holder"
        );
        n.on_tick(Time::ZERO + pull + pull + pull);
        assert_eq!(nack_dsts(outgoing_msgs(&mut n)), vec![NodeId(0)]);
        assert_eq!(n.metrics().bulk_nacks_sent, 3);
    }

    #[test]
    fn any_holder_serves_a_nack_from_its_store() {
        let mut n = mk_bulk(1, |_| {});
        n.on_bulk(BulkData {
            origin: NodeId(0),
            seq: OriginSeq(3),
            payload: Bytes::from_static(b"data"),
        });
        n.on_bulk_nack(
            Time::ZERO,
            BulkNack {
                from: NodeId(2),
                origin: NodeId(0),
                seq: OriginSeq(3),
            },
        );
        let msgs = outgoing_msgs(&mut n);
        let served: Vec<_> = msgs
            .iter()
            .filter_map(|(dst, m)| match m {
                SessionMsg::Bulk(b) => Some((*dst, b.payload.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(served, vec![(NodeId(2), Bytes::from_static(b"data"))]);
        assert_eq!(n.metrics().bulk_nacks_served, 1);
        // A NACK for something we do not hold is silently ignored.
        n.on_bulk_nack(
            Time::ZERO,
            BulkNack {
                from: NodeId(2),
                origin: NodeId(0),
                seq: OriginSeq(99),
            },
        );
        assert!(outgoing_msgs(&mut n).is_empty());
        assert_eq!(n.metrics().bulk_nacks_served, 1);
    }

    #[test]
    fn duplicate_bulk_frames_deliver_exactly_once() {
        let mut n = mk_bulk(1, |_| {});
        let frame = BulkData {
            origin: NodeId(0),
            seq: OriginSeq(0),
            payload: Bytes::from_static(b"wxyz"),
        };
        n.on_bulk(frame.clone());
        n.on_bulk(frame.clone()); // origin resend
        assert_eq!(n.metrics().bulk_duplicates, 1);
        let mut t = Token::founding(Ring::from([0, 1, 2]));
        t.seq = 10;
        t.msgs = vec![oob(0, 0, DeliveryMode::Agreed, 4, &[0])].into();
        n.on_token(Time::ZERO, t);
        n.on_bulk(frame); // NACK answer racing in after delivery
        assert_eq!(deliveries(&mut n).len(), 1);
        assert_eq!(n.metrics().deliveries, 1);
    }

    #[test]
    fn blind_delivery_dial_reopens_the_payload_gap() {
        // The seeded protocol bug the model checker must find: delivering
        // an ordered id whose payload never arrived.
        let mut n = mk_bulk(1, |c| c.bulk_blind_delivery = true);
        let mut t = Token::founding(Ring::from([0, 1, 2]));
        t.seq = 10;
        t.msgs = vec![oob(0, 0, DeliveryMode::Agreed, 4, &[0])].into();
        n.on_token(Time::ZERO, t);
        assert_eq!(
            deliveries(&mut n),
            vec![(NodeId(0), OriginSeq(0), Bytes::new())],
            "blind delivery hands the application an empty payload"
        );
    }
}
