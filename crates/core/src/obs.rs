//! Per-node observability state: trace journal + latency histograms.
//!
//! [`NodeObs`] lives inside every [`crate::SessionNode`] and is written on
//! the protocol hot paths (token accept/forward, 911, merge, delivery). It
//! measures the quantities the paper's evaluation (§4) reports —
//! token-rotation period, HUNGRY→EATING wait, 911 recovery duration,
//! multicast submit→deliver / submit→atomic latency — as log₂-bucketed
//! histograms, and records the causal event trail in a bounded
//! [`TraceJournal`] for post-mortems.
//!
//! The histograms are shareable handles (`Histogram::clone` shares the
//! buckets), so a harness can attach them to a [`raincore_obs::Registry`]
//! once and thereafter read percentiles without touching the node.

use raincore_obs::{Histogram, TraceJournal, TraceKind};
use raincore_types::{DeliveryMode, OriginSeq, Time};
use std::collections::HashMap;

/// Observability side-car for one session node.
#[derive(Debug)]
pub struct NodeObs {
    node: u32,
    journal: TraceJournal,
    /// Interval between consecutive token accepts (the rotation period).
    pub token_rotation: Histogram,
    /// HUNGRY→EATING wait.
    pub hungry_wait: Histogram,
    /// STARVING→regenerated duration (911 recovery, §2.3).
    pub recovery_911: Histogram,
    /// Multicast submit→local delivery, agreed mode.
    pub submit_to_deliver_agreed: Histogram,
    /// Multicast submit→local delivery, safe mode.
    pub submit_to_deliver_safe: Histogram,
    /// Multicast submit→atomicity confirmation, agreed mode.
    pub submit_to_atomic_agreed: Histogram,
    /// Multicast submit→atomicity confirmation, safe mode.
    pub submit_to_atomic_safe: Histogram,
    /// Size in bytes of each encoded outgoing token wire image.
    pub token_encode_bytes: Histogram,
    /// Latest time observed by the node (updated on every tick/datagram),
    /// so paths without a `now` parameter (e.g. `multicast`) can stamp.
    clock: Time,
    last_eating: Option<Time>,
    starving_since: Option<Time>,
    /// Submission times of this node's own in-flight multicasts.
    submits: HashMap<OriginSeq, (DeliveryMode, Time)>,
}

impl NodeObs {
    pub(crate) fn new(node: u32, now: Time) -> Self {
        NodeObs {
            node,
            journal: TraceJournal::default(),
            token_rotation: Histogram::new(),
            hungry_wait: Histogram::new(),
            recovery_911: Histogram::new(),
            submit_to_deliver_agreed: Histogram::new(),
            submit_to_deliver_safe: Histogram::new(),
            submit_to_atomic_agreed: Histogram::new(),
            submit_to_atomic_safe: Histogram::new(),
            token_encode_bytes: Histogram::new(),
            clock: now,
            last_eating: None,
            starving_since: None,
            submits: HashMap::new(),
        }
    }

    /// The recorded protocol event trail.
    pub fn journal(&self) -> &TraceJournal {
        &self.journal
    }

    /// Latest time the node has observed.
    pub fn now(&self) -> Time {
        self.clock
    }

    // ------------------------------------------------------------------
    // Hooks called from the protocol state machine
    // ------------------------------------------------------------------

    pub(crate) fn tick(&mut self, now: Time) {
        self.clock = self.clock.max(now);
    }

    pub(crate) fn trace(&mut self, kind: TraceKind) {
        self.journal.push(self.clock.as_nanos(), self.node, kind);
    }

    /// Token accepted (EATING). Records rotation period and hungry wait.
    pub(crate) fn token_accepted(&mut self, seq: u64, hop: u64, members: u64, since: Option<Time>) {
        let now = self.clock;
        if let Some(prev) = self.last_eating {
            self.token_rotation.record(now.since(prev).as_nanos());
        }
        self.last_eating = Some(now);
        let waited_ns = since.map_or(0, |s| now.since(s).as_nanos());
        if since.is_some() {
            self.hungry_wait.record(waited_ns);
        }
        self.starving_since = None;
        self.trace(TraceKind::TokenRx {
            seq,
            hop,
            members,
            waited_ns,
        });
    }

    /// Entered STARVING (first time for this incident only).
    pub(crate) fn starving(&mut self) {
        if self.starving_since.is_none() {
            self.starving_since = Some(self.clock);
        }
    }

    /// No longer starving without having regenerated (a Deny verdict sent
    /// us back to HUNGRY, or a token simply arrived).
    pub(crate) fn starving_resolved(&mut self) {
        self.starving_since = None;
    }

    /// Won the 911 vote and regenerated the token carrying `seq`.
    pub(crate) fn recovered(&mut self, seq: u64) {
        let duration_ns = self
            .starving_since
            .take()
            .map_or(0, |s| self.clock.since(s).as_nanos());
        self.recovery_911.record(duration_ns);
        self.trace(TraceKind::Recovered911 { duration_ns, seq });
    }

    /// Application submitted a multicast.
    pub(crate) fn submitted(&mut self, seq: OriginSeq, mode: DeliveryMode) {
        self.submits.insert(seq, (mode, self.clock));
    }

    /// One of our own multicasts was delivered locally.
    pub(crate) fn own_delivered(&mut self, seq: OriginSeq) {
        if let Some(&(mode, at)) = self.submits.get(&seq) {
            let lat = self.clock.since(at).as_nanos();
            match mode {
                DeliveryMode::Agreed => self.submit_to_deliver_agreed.record(lat),
                DeliveryMode::Safe => self.submit_to_deliver_safe.record(lat),
            }
        }
    }

    /// One of our own multicasts became atomic (retired from the token).
    pub(crate) fn own_atomic(&mut self, seq: OriginSeq) {
        if let Some((mode, at)) = self.submits.remove(&seq) {
            let lat = self.clock.since(at).as_nanos();
            match mode {
                DeliveryMode::Agreed => self.submit_to_atomic_agreed.record(lat),
                DeliveryMode::Safe => self.submit_to_atomic_safe.record(lat),
            }
        }
        self.trace(TraceKind::AtomicRetired { seq: seq.0 });
    }
}
