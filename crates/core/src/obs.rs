//! Per-node observability state: trace journal + latency histograms.
//!
//! [`NodeObs`] lives inside every [`crate::SessionNode`] and is written on
//! the protocol hot paths (token accept/forward, 911, merge, delivery). It
//! measures the quantities the paper's evaluation (§4) reports —
//! token-rotation period, HUNGRY→EATING wait, 911 recovery duration,
//! multicast submit→deliver / submit→atomic latency — as log₂-bucketed
//! histograms, and records the causal event trail in a bounded
//! [`TraceJournal`] for post-mortems.
//!
//! The histograms are shareable handles (`Histogram::clone` shares the
//! buckets), so a harness can attach them to a [`raincore_obs::Registry`]
//! once and thereafter read percentiles without touching the node.

use raincore_obs::{
    FlightRecorder, Histogram, RecKind, Stage, StageClock, StageHists, TraceJournal, TraceKind,
};
use raincore_types::{DeliveryMode, OriginSeq, Time, TraceCtx};
use std::collections::HashMap;

/// Stage timestamps of the hop currently moving through the node.
///
/// `b0..b3` are sampled on the receive side (datagram arrival, payload in
/// hand, decoded, protocol accepted), `pass`/`encoded` on the send side.
/// With no [`StageClock`] injected every sample reads 0 and the emitted
/// span carries zero durations — causality (circ/hop/parent) is intact.
#[derive(Debug, Default, Clone, Copy)]
struct PendingHop {
    ctx: TraceCtx,
    arrival_ns: u64,
    payload_ns: u64,
    decoded_ns: u64,
    accepted_ns: u64,
}

/// Observability side-car for one session node.
#[derive(Debug)]
pub struct NodeObs {
    node: u32,
    journal: TraceJournal,
    /// Interval between consecutive token accepts (the rotation period).
    pub token_rotation: Histogram,
    /// HUNGRY→EATING wait.
    pub hungry_wait: Histogram,
    /// STARVING→regenerated duration (911 recovery, §2.3).
    pub recovery_911: Histogram,
    /// Multicast submit→local delivery, agreed mode.
    pub submit_to_deliver_agreed: Histogram,
    /// Multicast submit→local delivery, safe mode.
    pub submit_to_deliver_safe: Histogram,
    /// Multicast submit→atomicity confirmation, agreed mode.
    pub submit_to_atomic_agreed: Histogram,
    /// Multicast submit→atomicity confirmation, safe mode.
    pub submit_to_atomic_safe: Histogram,
    /// Size in bytes of each encoded outgoing token wire image.
    pub token_encode_bytes: Histogram,
    /// Per-stage hop-latency histograms (recv/decode/protocol/encode/send).
    pub hop_stages: StageHists,
    /// Latest time observed by the node (updated on every tick/datagram),
    /// so paths without a `now` parameter (e.g. `multicast`) can stamp.
    clock: Time,
    last_eating: Option<Time>,
    starving_since: Option<Time>,
    /// Submission times of this node's own in-flight multicasts.
    submits: HashMap<OriginSeq, (DeliveryMode, Time)>,
    /// Injected monotonic stage clock (`None` in the deterministic sim:
    /// stage durations read 0, causal structure stays complete).
    stage_clock: Option<StageClock>,
    /// Shared flight recorder, when the harness attached one.
    recorder: Option<FlightRecorder>,
    /// Receive-side samples of the hop currently in flight.
    pending: Option<PendingHop>,
    /// Send-side samples: pass-begin and post-encode stamps.
    pass_begin_ns: u64,
    encoded_ns: u64,
    /// Trace context of the last hop this node accepted — the causal
    /// suspect quoted by STARVING/911/membership events.
    last_ctx: TraceCtx,
}

impl NodeObs {
    pub(crate) fn new(node: u32, now: Time) -> Self {
        NodeObs {
            node,
            journal: TraceJournal::default(),
            token_rotation: Histogram::new(),
            hungry_wait: Histogram::new(),
            recovery_911: Histogram::new(),
            submit_to_deliver_agreed: Histogram::new(),
            submit_to_deliver_safe: Histogram::new(),
            submit_to_atomic_agreed: Histogram::new(),
            submit_to_atomic_safe: Histogram::new(),
            token_encode_bytes: Histogram::new(),
            hop_stages: StageHists::new(),
            clock: now,
            last_eating: None,
            starving_since: None,
            submits: HashMap::new(),
            stage_clock: None,
            recorder: None,
            pending: None,
            pass_begin_ns: 0,
            encoded_ns: 0,
            last_ctx: TraceCtx::default(),
        }
    }

    /// The recorded protocol event trail.
    pub fn journal(&self) -> &TraceJournal {
        &self.journal
    }

    /// Latest time the node has observed.
    pub fn now(&self) -> Time {
        self.clock
    }

    /// Injects a monotonic nanosecond clock for stage sampling. Drivers
    /// that own real time (the UDP runtime, the bench harness) call this;
    /// the deterministic simulator does not, keeping runs reproducible.
    pub fn set_stage_clock(&mut self, clock: StageClock) {
        self.stage_clock = Some(clock);
    }

    /// Attaches a shared flight recorder; protocol moments are mirrored
    /// into it from then on.
    pub fn set_recorder(&mut self, recorder: FlightRecorder) {
        self.recorder = Some(recorder);
    }

    /// The attached flight recorder, if any.
    pub fn recorder(&self) -> Option<&FlightRecorder> {
        self.recorder.as_ref()
    }

    /// Trace context of the last token hop this node accepted.
    pub fn last_trace(&self) -> TraceCtx {
        self.last_ctx
    }

    fn stage_ns(&self) -> u64 {
        self.stage_clock.as_ref().map_or(0, StageClock::now_ns)
    }

    fn flight(&self, kind: RecKind, circ: u64, hop: u64, a: u64, b: u64) {
        if let Some(rec) = &self.recorder {
            rec.record(self.clock.as_nanos(), self.node, kind, circ, hop, a, b);
        }
    }

    // ------------------------------------------------------------------
    // Hooks called from the protocol state machine
    // ------------------------------------------------------------------

    pub(crate) fn tick(&mut self, now: Time) {
        self.clock = self.clock.max(now);
    }

    // --- hop stage sampling (b0..b5 of one token pass) ----------------

    /// b0: a datagram arrived (may or may not turn out to be a token).
    pub(crate) fn hop_arrival(&mut self) {
        self.pending = Some(PendingHop {
            arrival_ns: self.stage_ns(),
            ..PendingHop::default()
        });
    }

    /// b1: payload in hand, about to decode the session message.
    pub(crate) fn hop_payload(&mut self) {
        let ns = self.stage_ns();
        if let Some(p) = &mut self.pending {
            p.payload_ns = ns;
        }
    }

    /// b2: the payload decoded to a token (non-token payloads never get
    /// here; their pending sample dies on the next arrival).
    pub(crate) fn hop_decoded(&mut self) {
        let ns = self.stage_ns();
        if let Some(p) = &mut self.pending {
            p.decoded_ns = ns;
        }
    }

    /// b3: the protocol accepted the hop (EATING). Pins the trace context
    /// the eventual span is emitted under.
    pub(crate) fn hop_accepted(&mut self, ctx: TraceCtx) {
        let ns = self.stage_ns();
        self.last_ctx = ctx;
        if let Some(p) = &mut self.pending {
            p.ctx = ctx;
            p.accepted_ns = ns;
        }
        self.flight(RecKind::HopRecv, ctx.circ, ctx.hop, ctx.parent, 0);
    }

    /// b3': pass-side work begins (the EATING→pass boundary). Hold time
    /// between b3 and here is deliberately *not* a stage: it measures the
    /// application, not the pipeline.
    pub(crate) fn hop_pass_begin(&mut self) {
        self.pass_begin_ns = self.stage_ns();
    }

    /// b4: the outgoing wire image is encoded.
    pub(crate) fn hop_encoded(&mut self) {
        self.encoded_ns = self.stage_ns();
    }

    /// b5: the transport took the datagram — the hop is complete. Emits
    /// the `HopSpan` under the *outgoing* trace context (`ctx` is the
    /// header as sent, i.e. after the hop bump), records per-stage
    /// histograms and mirrors a `HopSend` flight record.
    pub(crate) fn hop_sent(&mut self, ctx: TraceCtx) {
        let send_end = self.stage_ns();
        let p = self.pending.take().unwrap_or_default();
        let d = |a: u64, b: u64| b.saturating_sub(a);
        let stages = [
            d(p.arrival_ns, p.payload_ns),
            d(p.payload_ns, p.decoded_ns),
            d(p.decoded_ns, p.accepted_ns),
            d(self.pass_begin_ns, self.encoded_ns),
            d(self.encoded_ns, send_end),
        ];
        for (stage, ns) in Stage::ALL.iter().zip(stages) {
            self.hop_stages.record(*stage, ns);
        }
        self.trace(TraceKind::HopSpan {
            circ: ctx.circ,
            hop: ctx.hop,
            parent: ctx.parent,
            recv_ns: stages[0],
            decode_ns: stages[1],
            protocol_ns: stages[2],
            encode_ns: stages[3],
            send_ns: stages[4],
        });
        self.flight(
            RecKind::HopSend,
            ctx.circ,
            ctx.hop,
            ctx.parent,
            stages.iter().sum(),
        );
        self.last_ctx = ctx;
    }

    /// A regeneration or merge minted circulation `new_ctx` causally
    /// after `parent_ctx`'s last hop.
    pub(crate) fn hop_minted(&mut self, parent_ctx: TraceCtx, new_ctx: TraceCtx) {
        self.trace(TraceKind::CauseRegen {
            circ: parent_ctx.circ,
            hop: parent_ctx.hop,
            new_circ: new_ctx.circ,
        });
        self.flight(
            RecKind::Regen,
            parent_ctx.circ,
            parent_ctx.hop,
            new_ctx.circ,
            new_ctx.hop,
        );
        self.last_ctx = new_ctx;
    }

    /// Membership changed on the hop carried by `ctx`.
    pub(crate) fn member_changed(&mut self, ctx: TraceCtx, member: u32, added: bool) {
        self.trace(TraceKind::CauseMember {
            circ: ctx.circ,
            hop: ctx.hop,
            member,
            added,
        });
        self.flight(
            RecKind::Member,
            ctx.circ,
            ctx.hop,
            u64::from(member),
            u64::from(added),
        );
    }

    pub(crate) fn trace(&mut self, kind: TraceKind) {
        self.journal.push(self.clock.as_nanos(), self.node, kind);
    }

    /// Token accepted (EATING). Records rotation period and hungry wait.
    pub(crate) fn token_accepted(&mut self, seq: u64, hop: u64, members: u64, since: Option<Time>) {
        let now = self.clock;
        if let Some(prev) = self.last_eating {
            self.token_rotation.record(now.since(prev).as_nanos());
        }
        self.last_eating = Some(now);
        let waited_ns = since.map_or(0, |s| now.since(s).as_nanos());
        if since.is_some() {
            self.hungry_wait.record(waited_ns);
        }
        self.starving_since = None;
        self.trace(TraceKind::TokenRx {
            seq,
            hop,
            members,
            waited_ns,
        });
    }

    /// Entered STARVING (first time for this incident only). Links the
    /// incident to the last hop this node observed — the causal suspect
    /// for the missing token.
    pub(crate) fn starving(&mut self) {
        if self.starving_since.is_none() {
            self.starving_since = Some(self.clock);
            let ctx = self.last_ctx;
            self.trace(TraceKind::CauseStarving {
                circ: ctx.circ,
                hop: ctx.hop,
            });
            self.flight(RecKind::Starving, ctx.circ, ctx.hop, 0, 0);
        }
    }

    /// Node shut down (voluntary leave or kill).
    pub(crate) fn shut_down(&mut self) {
        self.trace(TraceKind::ShutDown);
        let ctx = self.last_ctx;
        self.flight(RecKind::Shutdown, ctx.circ, ctx.hop, 0, 0);
    }

    /// A 911 call went out under request id `req_id`; links it to the
    /// last observed hop.
    pub(crate) fn called_911(&mut self, req_id: u64, last_seq: u64) {
        let ctx = self.last_ctx;
        self.trace(TraceKind::Cause911 {
            circ: ctx.circ,
            hop: ctx.hop,
            req_id,
        });
        self.flight(RecKind::Call911, ctx.circ, ctx.hop, req_id, last_seq);
    }

    /// No longer starving without having regenerated (a Deny verdict sent
    /// us back to HUNGRY, or a token simply arrived).
    pub(crate) fn starving_resolved(&mut self) {
        self.starving_since = None;
    }

    /// Won the 911 vote and regenerated the token carrying `seq`.
    pub(crate) fn recovered(&mut self, seq: u64) {
        let duration_ns = self
            .starving_since
            .take()
            .map_or(0, |s| self.clock.since(s).as_nanos());
        self.recovery_911.record(duration_ns);
        self.trace(TraceKind::Recovered911 { duration_ns, seq });
    }

    /// Application submitted a multicast.
    pub(crate) fn submitted(&mut self, seq: OriginSeq, mode: DeliveryMode) {
        self.submits.insert(seq, (mode, self.clock));
    }

    /// One of our own multicasts was delivered locally.
    pub(crate) fn own_delivered(&mut self, seq: OriginSeq) {
        if let Some(&(mode, at)) = self.submits.get(&seq) {
            let lat = self.clock.since(at).as_nanos();
            match mode {
                DeliveryMode::Agreed => self.submit_to_deliver_agreed.record(lat),
                DeliveryMode::Safe => self.submit_to_deliver_safe.record(lat),
            }
        }
    }

    /// One of our own multicasts became atomic (retired from the token).
    pub(crate) fn own_atomic(&mut self, seq: OriginSeq) {
        if let Some((mode, at)) = self.submits.remove(&seq) {
            let lat = self.clock.since(at).as_nanos();
            match mode {
                DeliveryMode::Agreed => self.submit_to_atomic_agreed.record(lat),
                DeliveryMode::Safe => self.submit_to_atomic_safe.record(lat),
            }
        }
        self.trace(TraceKind::AtomicRetired { seq: seq.0 });
    }
}
