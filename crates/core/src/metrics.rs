//! Session-layer counters.
//!
//! `task_switches` is the paper's §4.1 metric: the number of times the
//! node's CPU must switch from regular traffic processing to
//! group-communication processing. In this implementation it increments
//! once per *session-layer message processed* (a token arrival, a 911
//! call or verdict, a discovery beacon) — which is exactly `L` per second
//! per node during steady state, the figure the paper compares against
//! `M·N` for broadcast protocols. Transport-level acknowledgements are
//! accounted separately in `raincore-transport`'s stats so the comparison
//! can be made with or without them.

/// Counters maintained by every [`crate::SessionNode`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionMetrics {
    /// Group-communication processing wake-ups (the §4.1 CPU metric).
    pub task_switches: u64,
    /// Tokens accepted.
    pub tokens_received: u64,
    /// Tokens forwarded to a successor.
    pub tokens_sent: u64,
    /// Token self-passes (single-member ring rounds).
    pub self_passes: u64,
    /// Tokens discarded as stale (sequence number not newer than the
    /// local high-water mark — the duplicate-token elimination rule).
    pub stale_tokens_dropped: u64,
    /// 911 calls sent.
    pub calls911_sent: u64,
    /// 911 calls received (regeneration votes and join requests).
    pub calls911_received: u64,
    /// Discovery beacons sent.
    pub beacons_sent: u64,
    /// Discovery beacons received.
    pub beacons_received: u64,
    /// Tokens regenerated after winning a 911 vote.
    pub regenerations: u64,
    /// Sub-group merges performed by this node.
    pub merges: u64,
    /// Multicasts originated.
    pub multicasts_sent: u64,
    /// Multicast deliveries to the application.
    pub deliveries: u64,
    /// Open-group submissions relayed into the group (§2.6).
    pub open_relayed: u64,
    /// Failure-on-delivery notifications acted upon (members removed).
    pub failures_detected: u64,
}
