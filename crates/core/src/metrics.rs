//! Session-layer counters.
//!
//! `task_switches` is the paper's §4.1 metric: the number of times the
//! node's CPU must switch from regular traffic processing to
//! group-communication processing. In this implementation it increments
//! once per *session-layer message processed* (a token arrival, a 911
//! call or verdict, a discovery beacon) — which is exactly `L` per second
//! per node during steady state, the figure the paper compares against
//! `M·N` for broadcast protocols. Transport-level acknowledgements are
//! accounted separately in `raincore-transport`'s stats so the comparison
//! can be made with or without them.

use serde::ser::SerializeStruct;

/// Counters maintained by every [`crate::SessionNode`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionMetrics {
    /// Group-communication processing wake-ups (the §4.1 CPU metric).
    pub task_switches: u64,
    /// Tokens accepted.
    pub tokens_received: u64,
    /// Tokens forwarded to a successor.
    pub tokens_sent: u64,
    /// Token self-passes (single-member ring rounds).
    pub self_passes: u64,
    /// Tokens discarded as stale (sequence number not newer than the
    /// local high-water mark — the duplicate-token elimination rule).
    pub stale_tokens_dropped: u64,
    /// 911 calls sent.
    pub calls911_sent: u64,
    /// 911 calls received (regeneration votes and join requests).
    pub calls911_received: u64,
    /// 911 denials issued (this node voted Deny on a regeneration call).
    pub denials_911: u64,
    /// Discovery beacons sent.
    pub beacons_sent: u64,
    /// Discovery beacons received.
    pub beacons_received: u64,
    /// Tokens regenerated after winning a 911 vote.
    pub regenerations: u64,
    /// Singleton groups founded after total copy loss (every join probe
    /// unanswered and no local token copy to regenerate from).
    pub bootstrap_foundings: u64,
    /// Sub-group merges performed by this node.
    pub merges: u64,
    /// Multicasts originated.
    pub multicasts_sent: u64,
    /// Multicast deliveries to the application.
    pub deliveries: u64,
    /// Safe-mode messages that entered the hold-back queue not yet
    /// deliverable (held for §2.6's extra confirmation round).
    pub safe_held_back: u64,
    /// Open-group submissions relayed into the group (§2.6).
    pub open_relayed: u64,
    /// Failure-on-delivery notifications acted upon (members removed).
    pub failures_detected: u64,
    /// Failed sends this node re-routed (token re-sent to the next
    /// successor, or a 911 vote completed without the dead voter).
    pub retransmissions_acted: u64,
    /// Outgoing token encodes served from the patch-per-hop body cache
    /// (only the seq header was re-encoded).
    pub token_body_cache_hits: u64,
    /// Outgoing token encodes that re-encoded the body (membership or
    /// message-list change, or cold cache).
    pub token_body_cache_misses: u64,
    /// Out-of-band bulk payload frames unicast to members (origin side).
    pub bulk_frames_sent: u64,
    /// Out-of-band bulk payload frames received.
    pub bulk_frames_received: u64,
    /// Bulk frames rejected as duplicates of an already-accepted bulk id.
    pub bulk_duplicates: u64,
    /// NACK pulls sent for manifest ids whose payload never arrived.
    pub bulk_nacks_sent: u64,
    /// NACK pulls answered from the local bulk store.
    pub bulk_nacks_served: u64,
}

impl SessionMetrics {
    /// `(field name, value)` view, in declaration order. Single source of
    /// truth for the serde impl, the JSON renderer and metric exporters.
    pub fn fields(&self) -> [(&'static str, u64); 26] {
        [
            ("task_switches", self.task_switches),
            ("tokens_received", self.tokens_received),
            ("tokens_sent", self.tokens_sent),
            ("self_passes", self.self_passes),
            ("stale_tokens_dropped", self.stale_tokens_dropped),
            ("calls911_sent", self.calls911_sent),
            ("calls911_received", self.calls911_received),
            ("denials_911", self.denials_911),
            ("beacons_sent", self.beacons_sent),
            ("beacons_received", self.beacons_received),
            ("regenerations", self.regenerations),
            ("bootstrap_foundings", self.bootstrap_foundings),
            ("merges", self.merges),
            ("multicasts_sent", self.multicasts_sent),
            ("deliveries", self.deliveries),
            ("safe_held_back", self.safe_held_back),
            ("open_relayed", self.open_relayed),
            ("failures_detected", self.failures_detected),
            ("retransmissions_acted", self.retransmissions_acted),
            ("token_body_cache_hits", self.token_body_cache_hits),
            ("token_body_cache_misses", self.token_body_cache_misses),
            ("bulk_frames_sent", self.bulk_frames_sent),
            ("bulk_frames_received", self.bulk_frames_received),
            ("bulk_duplicates", self.bulk_duplicates),
            ("bulk_nacks_sent", self.bulk_nacks_sent),
            ("bulk_nacks_served", self.bulk_nacks_served),
        ]
    }

    /// Renders the counters as a flat JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, v)) in self.fields().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{v}"));
        }
        out.push('}');
        out
    }
}

impl serde::Serialize for SessionMetrics {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let fields = self.fields();
        let mut st = serializer.serialize_struct("SessionMetrics", fields.len())?;
        for (name, v) in fields {
            st.serialize_field(name, &v)?;
        }
        st.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_includes_every_counter() {
        let m = SessionMetrics {
            denials_911: 3,
            safe_held_back: 2,
            retransmissions_acted: 1,
            ..SessionMetrics::default()
        };
        let json = m.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"denials_911\":3"));
        assert!(json.contains("\"safe_held_back\":2"));
        assert!(json.contains("\"retransmissions_acted\":1"));
        assert!(json.contains("\"tokens_received\":0"));
        assert_eq!(json.matches(':').count(), 26, "all fields present once");
    }
}
