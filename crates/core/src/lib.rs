//! The Raincore Distributed Session Service (§2 of Fan & Bruck, IPPS 2001).
//!
//! A fault-tolerant token-ring protocol providing, over *unicast* links:
//!
//! * **group membership** — the circulating TOKEN carries the
//!   authoritative membership; aggressive failure detection via the
//!   transport's failure-on-delivery notification removes dead successors
//!   in a single hop (§2.2, §2.5);
//! * **reliable atomic multicast with consistent ordering** — messages are
//!   piggybacked on the token ("the token is the locomotive"); *agreed*
//!   (total) ordering costs nothing extra, *safe* delivery costs one extra
//!   round (§2.6);
//! * **token recovery and join** — the 911 protocol regenerates a lost
//!   token exactly once (from the newest surviving copy) and doubles as
//!   the join path, which automatically heals link failures and
//!   failure-detector false alarms (§2.3);
//! * **split-brain handling** — critical-resource monitors, BODYODOR
//!   discovery beacons and the deadlock-free group merge protocol (§2.4);
//! * **mutual exclusion** — the EATING state is a fault-tolerant master
//!   lock (§2.7), on which `raincore-dlm` builds named data locks.
//!
//! The central type is [`SessionNode`]; applications drive it through a
//! simulator or runtime and consume [`SessionEvent`]s.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod metrics;
pub mod node;
pub mod obs;
pub mod open;
pub mod typestate;

pub use events::{Delivery, SessionEvent};
pub use metrics::SessionMetrics;
pub use node::{SessionNode, StartMode};
pub use obs::NodeObs;
pub use open::{unwrap_open, wrap_open, OpenClient, OpenOutcome};
pub use typestate::{Role, TimerFired, VerdictOutcome, VoteProgress};
