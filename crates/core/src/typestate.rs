//! Typestate protocol core: HUNGRY / EATING / STARVING as types.
//!
//! §2.2 of the paper defines the per-node protocol state machine. This
//! module encodes each role state as its own type — [`Hungry`],
//! [`Eating`], [`Starving`], [`Down`] — whose transition methods *consume*
//! `self` and return the only legal successor states. The compiler now
//! proves what used to be a lint rule or a model-check counterexample:
//!
//! * a node that does not hold the token cannot send it — there is no
//!   `pass` method on [`Hungry`] or [`Starving`], so "send the token
//!   while HUNGRY" is a type error, not a runtime bug;
//! * every protocol message has a handler in every state *by
//!   construction* — the sealed [`ProtocolState`] trait requires
//!   `on_token_accept`, `on_grant`, `on_deny`, `on_peer_failed` and
//!   `holds_token` of each state type, so an unhandled 911 verdict or
//!   membership-change notification in some state fails `cargo build`;
//! * verdict outcomes are `#[must_use]`: ignoring a 911 grant while
//!   STARVING is rejected under `deny(unused_must_use)`.
//!
//! The driver layer ([`Role`]) wraps the typed states in a private enum so
//! [`crate::node::SessionNode`] can hold "whatever state we are in" while
//! every actual transition still goes through the typed methods. The state
//! types' fields are private to this module: no code outside it can
//! construct a role state or take one apart with a `match` — enforced by
//! the compiler here, and by `raincore-lint`'s `typestate-escape` rule
//! against textual regressions (e.g. someone re-adding a raw state enum).
//!
//! ```compile_fail
//! // ILLEGAL: sending the token while HUNGRY. `Hungry` has no `pass`
//! // method — only `Eating` can hand the token on — so this is a
//! // compile error, not a protocol violation at runtime.
//! fn illegal(h: raincore_session::typestate::Hungry) {
//!     let _ = h.pass(raincore_types::Time(0));
//! }
//! ```
//!
//! ```compile_fail
//! #![deny(unused_must_use)]
//! // ILLEGAL: ignoring a 911 verdict while STARVING. `VerdictOutcome`
//! // is #[must_use]; dropping it on the floor fails the build.
//! fn illegal(r: &mut raincore_session::typestate::Role) {
//!     r.on_verdict(
//!         raincore_types::NodeId(1),
//!         1,
//!         &raincore_types::Verdict911::Grant,
//!         raincore_types::Time(0),
//!     );
//! }
//! ```

use raincore_types::digest::StateDigest;
use raincore_types::{Duration, NodeId, Time, Token, Verdict911};
use std::collections::BTreeSet;

mod sealed {
    pub trait Sealed {}
    impl Sealed for super::Hungry {}
    impl Sealed for super::Eating {}
    impl Sealed for super::Starving {}
    impl Sealed for super::Down {}
}

/// A standing 911 vote (private to the typestate core: only a
/// [`Starving`] node votes, and only its handlers may touch the ballot).
#[derive(Debug)]
struct Vote911 {
    req_id: u64,
    awaiting: BTreeSet<NodeId>,
    /// Members that failed-on-delivery during the vote; excluded from the
    /// regenerated membership.
    excluded: Vec<NodeId>,
}

/// HUNGRY: the node does not hold the token (§2.2).
#[derive(Debug)]
pub struct Hungry {
    since: Time,
}

/// EATING: the node holds the token (§2.2).
#[derive(Debug)]
pub struct Eating {
    token: Token,
    deadline: Time,
}

/// STARVING: HUNGRY past the timeout — token suspected lost, 911 vote or
/// join probing in progress (§2.3).
#[derive(Debug)]
pub struct Starving {
    /// `None` while the node has no membership to poll (a fresh joiner
    /// probing the group with join-911s).
    vote: Option<Vote911>,
    retry_at: Time,
}

/// DOWN: terminal. The node shut itself down (§2.4) and handles nothing.
#[derive(Debug)]
pub struct Down {
    _sealed: (),
}

/// What a 911 verdict did to the role state. `#[must_use]`: a STARVING
/// node that ignores a verdict livelocks (grants) or splits the ring
/// (denials), so the compiler insists the caller act on the outcome.
#[must_use = "a 911 verdict changes the vote; the caller must act on the outcome"]
#[derive(Debug, PartialEq, Eq)]
pub enum VerdictOutcome {
    /// Not voting, or the verdict belongs to an earlier call.
    Ignored,
    /// Grant recorded; the vote is still open.
    Waiting,
    /// Every polled member granted: the caller must regenerate the token
    /// ([`Role::win_vote`]).
    Won,
    /// A member denied — somebody holds a newer copy or the token itself.
    /// The role is back to HUNGRY with a fresh timeout.
    Denied,
}

/// What a failure-on-delivery notification did to a standing vote.
#[must_use = "a failed voter changes the ballot; the caller must act on the outcome"]
#[derive(Debug, PartialEq, Eq)]
pub enum VoteProgress {
    /// No standing vote; nothing to record.
    NotVoting,
    /// The dead peer was struck from the ballot and excluded from the
    /// regenerated membership.
    Recorded {
        /// The peer had not answered yet (its removal advanced the vote).
        was_awaiting: bool,
        /// The ballot is now fully answered: the caller must regenerate.
        vote_complete: bool,
    },
}

/// Which protocol timer fired at a tick.
#[derive(Debug, PartialEq, Eq)]
pub enum TimerFired {
    /// EATING past the token-hold deadline: pass the token.
    PassToken,
    /// HUNGRY past the hungry timeout: enter STARVING.
    Starve,
    /// STARVING past the retry deadline: re-call 911.
    Retry911,
    /// No protocol timer due.
    Idle,
}

/// Message handlers every role state must provide *by construction*.
///
/// The trait is sealed: exactly the four role states implement it, and a
/// new state cannot be added without answering every protocol message —
/// an unhandled 911 verdict or membership change in some state is a
/// missing-method compile error, not a runtime fall-through.
pub trait ProtocolState: sealed::Sealed + Sized {
    /// A token was accepted while in this state (the successor is always
    /// EATING; §2.2's HUNGRY → EATING edge, plus re-accept while EATING
    /// for false-alarm fork absorption).
    fn on_token_accept(self, token: Token, deadline: Time) -> Eating;
    /// A 911 GRANT verdict for request `req_id` arrived from `from`.
    fn on_grant(self, from: NodeId, req_id: u64) -> (Role, VerdictOutcome);
    /// A 911 DENY verdict for request `req_id` arrived.
    fn on_deny(self, req_id: u64, now: Time) -> (Role, VerdictOutcome);
    /// Failure-on-delivery of a 911 call to `to` — a failure detection of
    /// that member (§2.2) and thus a membership change for the vote.
    fn on_peer_failed(self, to: NodeId) -> (Role, VoteProgress);
    /// Does this state demonstrably hold the token? (Grounds for denying
    /// someone else's 911, §2.3.)
    fn holds_token(&self) -> bool;
}

impl Hungry {
    /// When the node went hungry.
    pub fn since(&self) -> Time {
        self.since
    }

    /// HUNGRY → STARVING with no membership to poll (join probing).
    pub fn starve_probe(self, retry_at: Time) -> Starving {
        Starving {
            vote: None,
            retry_at,
        }
    }

    /// HUNGRY → STARVING with a standing 911 vote over `awaiting`.
    pub fn starve_vote(self, req_id: u64, awaiting: BTreeSet<NodeId>, retry_at: Time) -> Starving {
        Starving {
            vote: Some(Vote911 {
                req_id,
                awaiting,
                excluded: Vec::new(),
            }),
            retry_at,
        }
    }

    /// HUNGRY → DOWN (shutdown without a token to hand off).
    pub fn shut_down(self) -> Down {
        Down { _sealed: () }
    }
}

impl ProtocolState for Hungry {
    fn on_token_accept(self, token: Token, deadline: Time) -> Eating {
        Eating { token, deadline }
    }
    fn on_grant(self, _from: NodeId, _req_id: u64) -> (Role, VerdictOutcome) {
        (Role::from(self), VerdictOutcome::Ignored)
    }
    fn on_deny(self, _req_id: u64, _now: Time) -> (Role, VerdictOutcome) {
        (Role::from(self), VerdictOutcome::Ignored)
    }
    fn on_peer_failed(self, _to: NodeId) -> (Role, VoteProgress) {
        (Role::from(self), VoteProgress::NotVoting)
    }
    fn holds_token(&self) -> bool {
        false
    }
}

impl Eating {
    /// The held token.
    pub fn token(&self) -> &Token {
        &self.token
    }

    /// The pass deadline (end of the token-hold budget).
    pub fn deadline(&self) -> Time {
        self.deadline
    }

    /// EATING → HUNGRY: hand the token out for forwarding. This is the
    /// *only* way to obtain the token for a send — no other state has it.
    pub fn pass(self, now: Time) -> (Token, Hungry) {
        (self.token, Hungry { since: now })
    }

    /// EATING → DOWN: shutdown surrenders the held token so the caller
    /// can hand it off cleanly before going dark.
    pub fn shut_down(self) -> (Token, Down) {
        (self.token, Down { _sealed: () })
    }

    /// False-alarm fork absorption (module docs of `node`): a second
    /// token converged on us; preserve any messages only our held copy
    /// had by moving them into `incoming` (dedup by key). Leaves the held
    /// message list empty — the caller re-accepts `incoming` right after.
    pub fn absorb_fork(&mut self, incoming: &mut Token) {
        for m in self.token.msgs.take_all() {
            if !incoming.msgs.iter().any(|x| x.key() == m.key()) {
                incoming.msgs.push(m);
            }
        }
    }
}

impl ProtocolState for Eating {
    fn on_token_accept(self, token: Token, deadline: Time) -> Eating {
        Eating { token, deadline }
    }
    fn on_grant(self, _from: NodeId, _req_id: u64) -> (Role, VerdictOutcome) {
        (Role::from(self), VerdictOutcome::Ignored)
    }
    fn on_deny(self, _req_id: u64, _now: Time) -> (Role, VerdictOutcome) {
        (Role::from(self), VerdictOutcome::Ignored)
    }
    fn on_peer_failed(self, _to: NodeId) -> (Role, VoteProgress) {
        (Role::from(self), VoteProgress::NotVoting)
    }
    fn holds_token(&self) -> bool {
        true
    }
}

impl Starving {
    /// The retry deadline.
    pub fn retry_at(&self) -> Time {
        self.retry_at
    }

    /// STARVING → HUNGRY: the vote was won (or is being force-completed
    /// by failure detections); surrender the exclusion list so the caller
    /// regenerates the token without the dead voters.
    pub fn win(self, now: Time) -> (Vec<NodeId>, Hungry) {
        let excluded = self.vote.map(|v| v.excluded).unwrap_or_default();
        (excluded, Hungry { since: now })
    }

    /// STARVING → DOWN.
    pub fn shut_down(self) -> Down {
        Down { _sealed: () }
    }
}

impl ProtocolState for Starving {
    fn on_token_accept(self, token: Token, deadline: Time) -> Eating {
        Eating { token, deadline }
    }

    fn on_grant(mut self, from: NodeId, req_id: u64) -> (Role, VerdictOutcome) {
        let Some(v) = self.vote.as_mut() else {
            // Join probing: replies are ignored, the join completes via
            // token delivery.
            return (Role::from(self), VerdictOutcome::Ignored);
        };
        if req_id != v.req_id {
            return (Role::from(self), VerdictOutcome::Ignored);
        }
        v.awaiting.remove(&from);
        let outcome = if v.awaiting.is_empty() {
            VerdictOutcome::Won
        } else {
            VerdictOutcome::Waiting
        };
        (Role::from(self), outcome)
    }

    fn on_deny(self, req_id: u64, now: Time) -> (Role, VerdictOutcome) {
        match &self.vote {
            Some(v) if v.req_id == req_id => {
                // Someone has a newer copy or the token itself; it (or
                // its holder) will keep the ring alive. Back to HUNGRY
                // with a fresh timeout.
                (Role::from(Hungry { since: now }), VerdictOutcome::Denied)
            }
            _ => (Role::from(self), VerdictOutcome::Ignored),
        }
    }

    fn on_peer_failed(mut self, to: NodeId) -> (Role, VoteProgress) {
        let Some(v) = self.vote.as_mut() else {
            return (Role::from(self), VoteProgress::NotVoting);
        };
        let was_awaiting = v.awaiting.remove(&to);
        if !v.excluded.contains(&to) {
            v.excluded.push(to);
        }
        let vote_complete = v.awaiting.is_empty();
        (
            Role::from(self),
            VoteProgress::Recorded {
                was_awaiting,
                vote_complete,
            },
        )
    }

    fn holds_token(&self) -> bool {
        false
    }
}

impl ProtocolState for Down {
    fn on_token_accept(self, token: Token, deadline: Time) -> Eating {
        // Unreachable in practice: the node gates every input on
        // `is_down`. Typing it as a transition keeps the trait total; a
        // resurrecting driver would simply start eating.
        Eating { token, deadline }
    }
    fn on_grant(self, _from: NodeId, _req_id: u64) -> (Role, VerdictOutcome) {
        (Role::from(self), VerdictOutcome::Ignored)
    }
    fn on_deny(self, _req_id: u64, _now: Time) -> (Role, VerdictOutcome) {
        (Role::from(self), VerdictOutcome::Ignored)
    }
    fn on_peer_failed(self, _to: NodeId) -> (Role, VoteProgress) {
        (Role::from(self), VoteProgress::NotVoting)
    }
    fn holds_token(&self) -> bool {
        false
    }
}

/// The four role states, erased for storage in [`crate::node::SessionNode`].
///
/// Private on purpose: pattern-matching raw states outside this module is
/// exactly the ad-hoc dispatch the typestate refactor retired.
#[derive(Debug)]
enum RoleInner {
    Hungry(Hungry),
    Eating(Eating),
    Starving(Starving),
    Down(Down),
}

/// Driver-facing wrapper over the typed role states.
///
/// [`crate::node::SessionNode`] needs to hold "whichever state the node is
/// in"; `Role` stores that erased, but every mutation routes through the
/// consuming typed transitions, so the set of reachable state changes is
/// exactly the typed edges.
#[derive(Debug)]
pub struct Role {
    inner: RoleInner,
}

impl From<Hungry> for Role {
    fn from(s: Hungry) -> Role {
        Role {
            inner: RoleInner::Hungry(s),
        }
    }
}
impl From<Eating> for Role {
    fn from(s: Eating) -> Role {
        Role {
            inner: RoleInner::Eating(s),
        }
    }
}
impl From<Starving> for Role {
    fn from(s: Starving) -> Role {
        Role {
            inner: RoleInner::Starving(s),
        }
    }
}
impl From<Down> for Role {
    fn from(s: Down) -> Role {
        Role {
            inner: RoleInner::Down(s),
        }
    }
}

impl Role {
    /// A fresh HUNGRY role (the initial state of every node).
    pub fn hungry(now: Time) -> Role {
        Role::from(Hungry { since: now })
    }

    fn inner(&self) -> &RoleInner {
        &self.inner
    }

    /// Applies a typed transition to the current state, storing whatever
    /// role it returns. The inert DOWN state stands in while the
    /// transition runs (no `Option`, no unwrap); the successor replaces
    /// it before returning, and a panic inside `f` leaves the role
    /// safely DOWN rather than poisoned.
    fn step<T>(&mut self, f: impl FnOnce(RoleInner) -> (Role, T)) -> T {
        let cur = std::mem::replace(&mut self.inner, RoleInner::Down(Down { _sealed: () }));
        let (next, out) = f(cur);
        self.inner = next.inner;
        out
    }

    /// Current state name, for traces and tests.
    pub fn name(&self) -> &'static str {
        match self.inner() {
            RoleInner::Hungry(_) => "HUNGRY",
            RoleInner::Eating(_) => "EATING",
            RoleInner::Starving(_) => "STARVING",
            RoleInner::Down(_) => "DOWN",
        }
    }

    /// True while the node holds the token (EATING, §2.2).
    pub fn is_eating(&self) -> bool {
        matches!(self.inner(), RoleInner::Eating(_))
    }

    /// True once the node has shut itself down.
    pub fn is_down(&self) -> bool {
        matches!(self.inner(), RoleInner::Down(_))
    }

    /// Does the current state demonstrably hold the token? (Dispatches
    /// the per-state [`ProtocolState::holds_token`] handler.)
    pub fn holds_token(&self) -> bool {
        match self.inner() {
            RoleInner::Hungry(s) => s.holds_token(),
            RoleInner::Eating(s) => s.holds_token(),
            RoleInner::Starving(s) => s.holds_token(),
            RoleInner::Down(s) => s.holds_token(),
        }
    }

    /// When the node went hungry, if it is HUNGRY (feeds the hungry-wait
    /// histogram on token acceptance).
    pub fn hungry_since(&self) -> Option<Time> {
        match self.inner() {
            RoleInner::Hungry(s) => Some(s.since()),
            _ => None,
        }
    }

    /// Which protocol timer fired at `now`, if any.
    pub fn timer(&self, now: Time, hungry_timeout: Duration, master_held: bool) -> TimerFired {
        match self.inner() {
            RoleInner::Eating(s) => {
                if now >= s.deadline() && !master_held {
                    TimerFired::PassToken
                } else {
                    TimerFired::Idle
                }
            }
            RoleInner::Hungry(s) => {
                if now.since(s.since()) >= hungry_timeout {
                    TimerFired::Starve
                } else {
                    TimerFired::Idle
                }
            }
            RoleInner::Starving(s) => {
                if now >= s.retry_at() {
                    TimerFired::Retry911
                } else {
                    TimerFired::Idle
                }
            }
            RoleInner::Down(_) => TimerFired::Idle,
        }
    }

    /// The next protocol deadline of the current state, if any.
    pub fn next_deadline(&self, hungry_timeout: Duration, master_held: bool) -> Option<Time> {
        match self.inner() {
            RoleInner::Eating(s) => (!master_held).then(|| s.deadline()),
            RoleInner::Hungry(s) => Some(s.since() + hungry_timeout),
            RoleInner::Starving(s) => Some(s.retry_at()),
            RoleInner::Down(_) => None,
        }
    }

    /// Accepts a token: any state → EATING via the per-state
    /// [`ProtocolState::on_token_accept`] handler.
    pub fn accept_token(&mut self, token: Token, deadline: Time) {
        self.step(|cur| {
            let eating = match cur {
                RoleInner::Hungry(s) => s.on_token_accept(token, deadline),
                RoleInner::Eating(s) => s.on_token_accept(token, deadline),
                RoleInner::Starving(s) => s.on_token_accept(token, deadline),
                RoleInner::Down(s) => s.on_token_accept(token, deadline),
            };
            (Role::from(eating), ())
        })
    }

    /// EATING → HUNGRY: takes the held token out for forwarding (or for
    /// an immediate merge). `None` — and no state change — otherwise.
    pub fn take_token(&mut self, now: Time) -> Option<Token> {
        self.step(|cur| match cur {
            RoleInner::Eating(s) => {
                let (token, hungry) = s.pass(now);
                (Role::from(hungry), Some(token))
            }
            other => (Role { inner: other }, None),
        })
    }

    /// If EATING, absorbs a false-alarm fork: moves messages only the
    /// held token had into `incoming` (see [`Eating::absorb_fork`]).
    pub fn absorb_fork(&mut self, incoming: &mut Token) {
        if let RoleInner::Eating(s) = &mut self.inner {
            s.absorb_fork(incoming);
        }
    }

    /// If EATING, removes a failed member from the held token's
    /// membership (aggressive failure detection on a stale pass).
    pub fn remove_from_held(&mut self, node: NodeId) {
        if let RoleInner::Eating(s) = &mut self.inner {
            s.token.ring.remove(node);
        }
    }

    /// Re-arms HUNGRY with a fresh `since`. Used after handing the token
    /// to the transport (the pass is in flight) and on the
    /// failure-on-delivery resend path, where a node that had already
    /// moved to STARVING reclaims forwarding responsibility.
    pub fn rearm_hungry(&mut self, now: Time) {
        self.step(|_| (Role::hungry(now), ()));
    }

    /// HUNGRY/STARVING → STARVING with no vote (join probing).
    pub fn begin_starving_probe(&mut self, retry_at: Time) {
        self.step(|cur| {
            let s = match cur {
                RoleInner::Hungry(h) => h.starve_probe(retry_at),
                RoleInner::Starving(_) => Starving {
                    vote: None,
                    retry_at,
                },
                other => {
                    debug_assert!(false, "begin_starving_probe from {other:?}");
                    return (Role { inner: other }, ());
                }
            };
            (Role::from(s), ())
        })
    }

    /// HUNGRY/STARVING → STARVING with a standing vote over `awaiting`.
    pub fn begin_starving_vote(&mut self, req_id: u64, awaiting: BTreeSet<NodeId>, retry_at: Time) {
        self.step(|cur| {
            let s = match cur {
                RoleInner::Hungry(h) => h.starve_vote(req_id, awaiting, retry_at),
                RoleInner::Starving(_) => Starving {
                    vote: Some(Vote911 {
                        req_id,
                        awaiting,
                        excluded: Vec::new(),
                    }),
                    retry_at,
                },
                other => {
                    debug_assert!(false, "begin_starving_vote from {other:?}");
                    return (Role { inner: other }, ());
                }
            };
            (Role::from(s), ())
        })
    }

    /// The standing vote's request id and still-awaiting voters, if the
    /// node is STARVING with an unanswered ballot (drives the 911
    /// retransmission path).
    pub fn standing_vote(&self) -> Option<(u64, Vec<NodeId>)> {
        match self.inner() {
            RoleInner::Starving(Starving { vote: Some(v), .. }) if !v.awaiting.is_empty() => {
                Some((v.req_id, v.awaiting.iter().copied().collect()))
            }
            _ => None,
        }
    }

    /// Pushes the STARVING retry deadline (after a retransmission).
    pub fn rearm_starving(&mut self, retry_at: Time) {
        if let RoleInner::Starving(s) = &mut self.inner {
            s.retry_at = retry_at;
        }
    }

    /// Routes a 911 verdict to the current state's handler.
    pub fn on_verdict(
        &mut self,
        from: NodeId,
        req_id: u64,
        verdict: &Verdict911,
        now: Time,
    ) -> VerdictOutcome {
        self.step(|cur| match (cur, verdict) {
            (RoleInner::Hungry(s), Verdict911::Grant) => s.on_grant(from, req_id),
            (RoleInner::Hungry(s), Verdict911::Deny { .. }) => s.on_deny(req_id, now),
            (RoleInner::Eating(s), Verdict911::Grant) => s.on_grant(from, req_id),
            (RoleInner::Eating(s), Verdict911::Deny { .. }) => s.on_deny(req_id, now),
            (RoleInner::Starving(s), Verdict911::Grant) => s.on_grant(from, req_id),
            (RoleInner::Starving(s), Verdict911::Deny { .. }) => s.on_deny(req_id, now),
            (RoleInner::Down(s), Verdict911::Grant) => s.on_grant(from, req_id),
            (RoleInner::Down(s), Verdict911::Deny { .. }) => s.on_deny(req_id, now),
        })
    }

    /// Routes a failure-on-delivery of a 911 call to the current state's
    /// handler.
    pub fn vote_peer_failed(&mut self, to: NodeId) -> VoteProgress {
        self.step(|cur| match cur {
            RoleInner::Hungry(s) => s.on_peer_failed(to),
            RoleInner::Eating(s) => s.on_peer_failed(to),
            RoleInner::Starving(s) => s.on_peer_failed(to),
            RoleInner::Down(s) => s.on_peer_failed(to),
        })
    }

    /// STARVING → HUNGRY: the vote was won; returns the members excluded
    /// by failure detections during the vote. `None` — and no state
    /// change — if the node is not STARVING.
    pub fn win_vote(&mut self, now: Time) -> Option<Vec<NodeId>> {
        self.step(|cur| match cur {
            RoleInner::Starving(s) => {
                let (excluded, hungry) = s.win(now);
                (Role::from(hungry), Some(excluded))
            }
            other => (Role { inner: other }, None),
        })
    }

    /// Any state → DOWN. Returns the held token if the node was EATING so
    /// the caller can hand it off cleanly before going dark.
    pub fn shut_down(&mut self) -> Option<Token> {
        self.step(|cur| {
            let token = match cur {
                RoleInner::Eating(s) => {
                    let (token, _down) = s.shut_down();
                    Some(token)
                }
                RoleInner::Hungry(s) => {
                    let _ = s.shut_down();
                    None
                }
                RoleInner::Starving(s) => {
                    let _ = s.shut_down();
                    None
                }
                RoleInner::Down(_) => None,
            };
            (Role::from(Down { _sealed: () }), token)
        })
    }

    /// Digests the role state for the model checker's canonical state
    /// fingerprint. Times are digested relative to `now`; the vote's
    /// member sets are digested in canonical id order so symmetric votes
    /// merge.
    pub fn digest_into(&self, d: &mut StateDigest, now: Time) {
        match self.inner() {
            RoleInner::Hungry(s) => {
                d.tag(0);
                d.time_rel(s.since, now);
            }
            RoleInner::Eating(s) => {
                d.tag(1);
                use raincore_types::digest::DigestInto;
                s.token.digest_into(d);
                d.time_rel(s.deadline, now);
            }
            RoleInner::Starving(s) => {
                d.tag(2);
                d.time_rel(s.retry_at, now);
                match &s.vote {
                    None => d.tag(0),
                    Some(v) => {
                        d.tag(1);
                        d.write_u64(v.req_id);
                        let mut awaiting: Vec<NodeId> = v.awaiting.iter().copied().collect();
                        awaiting.sort_by(|a, b| d.canon_cmp(*a, *b));
                        d.write_len(awaiting.len());
                        for n in awaiting {
                            d.node(n);
                        }
                        // Exclusions act as a set (each is removed from
                        // the regenerated ring); digest order-insensitive.
                        let mut excluded = v.excluded.clone();
                        excluded.sort_by(|a, b| d.canon_cmp(*a, *b));
                        d.write_len(excluded.len());
                        for n in excluded {
                            d.node(n);
                        }
                    }
                }
            }
            RoleInner::Down(_) => d.tag(3),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raincore_types::Ring;

    fn token() -> Token {
        Token::founding(Ring::from([0, 1, 2]))
    }

    #[test]
    fn typed_pass_is_the_only_token_exit() {
        let mut r = Role::hungry(Time(0));
        assert_eq!(r.take_token(Time(1)), None, "HUNGRY holds no token");
        r.accept_token(token(), Time(5));
        assert!(r.is_eating());
        let t = r.take_token(Time(5)).expect("EATING hands the token out");
        assert_eq!(t.ring.len(), 3);
        assert_eq!(r.name(), "HUNGRY");
        assert_eq!(r.hungry_since(), Some(Time(5)));
    }

    #[test]
    fn verdicts_ignored_outside_a_vote() {
        let mut r = Role::hungry(Time(0));
        assert_eq!(
            r.on_verdict(NodeId(1), 7, &Verdict911::Grant, Time(0)),
            VerdictOutcome::Ignored
        );
        r.begin_starving_probe(Time(10));
        assert_eq!(
            r.on_verdict(NodeId(1), 7, &Verdict911::Grant, Time(0)),
            VerdictOutcome::Ignored,
            "probing starvation has no ballot"
        );
        assert_eq!(r.name(), "STARVING");
    }

    #[test]
    fn vote_wins_when_every_grant_lands() {
        let mut r = Role::hungry(Time(0));
        r.begin_starving_vote(3, BTreeSet::from([NodeId(1), NodeId(2)]), Time(40));
        assert_eq!(
            r.on_verdict(NodeId(1), 99, &Verdict911::Grant, Time(1)),
            VerdictOutcome::Ignored,
            "stale req id"
        );
        assert_eq!(
            r.on_verdict(NodeId(1), 3, &Verdict911::Grant, Time(1)),
            VerdictOutcome::Waiting
        );
        assert_eq!(
            r.on_verdict(NodeId(2), 3, &Verdict911::Grant, Time(2)),
            VerdictOutcome::Won
        );
        assert_eq!(
            r.name(),
            "STARVING",
            "winning leaves regeneration to the caller"
        );
        assert_eq!(r.win_vote(Time(2)), Some(vec![]));
        assert_eq!(r.name(), "HUNGRY");
    }

    #[test]
    fn deny_rearms_hungry() {
        let mut r = Role::hungry(Time(0));
        r.begin_starving_vote(4, BTreeSet::from([NodeId(1)]), Time(40));
        assert_eq!(
            r.on_verdict(NodeId(1), 4, &Verdict911::Deny { newer_seq: 9 }, Time(7)),
            VerdictOutcome::Denied
        );
        assert_eq!(r.name(), "HUNGRY");
        assert_eq!(r.hungry_since(), Some(Time(7)));
    }

    #[test]
    fn failed_voters_complete_the_ballot() {
        let mut r = Role::hungry(Time(0));
        r.begin_starving_vote(5, BTreeSet::from([NodeId(1), NodeId(2)]), Time(40));
        assert_eq!(
            r.vote_peer_failed(NodeId(2)),
            VoteProgress::Recorded {
                was_awaiting: true,
                vote_complete: false
            }
        );
        assert_eq!(
            r.vote_peer_failed(NodeId(2)),
            VoteProgress::Recorded {
                was_awaiting: false,
                vote_complete: false
            },
            "an already-struck voter still counts as recorded"
        );
        assert_eq!(
            r.vote_peer_failed(NodeId(1)),
            VoteProgress::Recorded {
                was_awaiting: true,
                vote_complete: true
            }
        );
        assert_eq!(
            r.win_vote(Time(9)),
            Some(vec![NodeId(2), NodeId(1)]),
            "exclusions in detection order"
        );
    }

    #[test]
    fn shutdown_surrenders_the_token_only_when_eating() {
        let mut r = Role::hungry(Time(0));
        assert_eq!(r.shut_down(), None);
        assert!(r.is_down());
        let mut r = Role::hungry(Time(0));
        r.accept_token(token(), Time(5));
        assert!(r.shut_down().is_some());
        assert!(r.is_down());
        assert_eq!(r.shut_down(), None, "already down");
    }

    #[test]
    fn timers_fire_per_state() {
        let ht = Duration(100);
        let mut r = Role::hungry(Time(0));
        assert_eq!(r.timer(Time(99), ht, false), TimerFired::Idle);
        assert_eq!(r.timer(Time(100), ht, false), TimerFired::Starve);
        r.accept_token(token(), Time(10));
        assert_eq!(r.timer(Time(10), ht, false), TimerFired::PassToken);
        assert_eq!(
            r.timer(Time(10), ht, true),
            TimerFired::Idle,
            "master lock pins"
        );
        assert_eq!(r.next_deadline(ht, false), Some(Time(10)));
        assert_eq!(r.next_deadline(ht, true), None);
        let _ = r.take_token(Time(10));
        r.begin_starving_probe(Time(50));
        assert_eq!(r.timer(Time(49), ht, false), TimerFired::Idle);
        assert_eq!(r.timer(Time(50), ht, false), TimerFired::Retry911);
    }

    #[test]
    fn digest_distinguishes_states_and_merges_time_shifts() {
        use raincore_types::StateDigest;
        let fp = |r: &Role, now: Time| {
            let mut d = StateDigest::identity();
            r.digest_into(&mut d, now);
            d.finish()
        };
        let h0 = Role::hungry(Time(0));
        let h5 = Role::hungry(Time(5));
        assert_eq!(
            fp(&h0, Time(3)),
            fp(&h5, Time(8)),
            "same hungry age at different absolute times"
        );
        let mut e = Role::hungry(Time(0));
        e.accept_token(token(), Time(5));
        assert_ne!(fp(&h0, Time(3)), fp(&e, Time(3)));
    }
}
