//! Open group communication (§2.6).
//!
//! "In addition, open group communication between a node outside the
//! Raincore group and the Raincore group can be achieved. A node can
//! send a message to any member of the Raincore group, and that member
//! then forwards the message to the entire group using Raincore."
//!
//! An external [`OpenClient`] rides the Raincore Transport Service only
//! (no session stack, no membership): it reliably unicasts an
//! [`OpenSubmit`] to any member and fails over to another member on
//! failure-on-delivery. The receiving member deduplicates per
//! `(sender, seq)` and injects the payload into the group as an ordinary
//! agreed multicast, wrapped in an envelope that preserves the external
//! origin; group members recover it with [`unwrap_open`].
//!
//! [`OpenSubmit`]: raincore_types::messages::OpenSubmit

use bytes::Bytes;
use raincore_net::{Addr, Datagram};
use raincore_transport::{Endpoint, PeerTable, TransportEvent};
use raincore_types::messages::OpenSubmit;
use raincore_types::wire::{Reader, WireDecode, WireEncode, Writer};
use raincore_types::{
    Error, Incarnation, MsgId, NodeId, OriginSeq, Result, SessionMsg, Time, TransportConfig,
};
use std::collections::{HashMap, VecDeque};

/// Magic prefix of an open-group envelope inside a multicast payload.
pub const OPEN_MAGIC: &[u8; 4] = b"RCOP";

/// Wraps an external submission into a multicast envelope.
pub fn wrap_open(from: NodeId, seq: OriginSeq, payload: &[u8]) -> Bytes {
    let mut w = Writer::with_capacity(payload.len() + 12);
    for &b in OPEN_MAGIC {
        w.put_u8(b);
    }
    from.encode(&mut w);
    seq.encode(&mut w);
    w.put_bytes(payload);
    w.finish()
}

/// Recovers `(external sender, sender seq, payload)` from an open-group
/// envelope; `None` if the payload is not one.
pub fn unwrap_open(payload: &[u8]) -> Option<(NodeId, OriginSeq, Bytes)> {
    let rest = payload.strip_prefix(&OPEN_MAGIC[..])?;
    let mut r = Reader::new(rest);
    let from = NodeId::decode(&mut r).ok()?;
    let seq = OriginSeq::decode(&mut r).ok()?;
    let inner = r.get_bytes().ok()?;
    r.expect_end().ok()?;
    Some((from, seq, inner))
}

/// Outcome of an open submission, as observed by the external client.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OpenOutcome {
    /// A member accepted the submission (it will be multicast).
    Accepted {
        /// The submission's sequence.
        seq: OriginSeq,
        /// The member that accepted it.
        via: NodeId,
    },
    /// Every candidate member failed; the submission was dropped.
    Failed {
        /// The submission's sequence.
        seq: OriginSeq,
    },
}

#[derive(Debug)]
struct PendingSubmit {
    seq: OriginSeq,
    payload: Bytes,
    /// Members not yet tried.
    remaining: Vec<NodeId>,
}

/// An external (non-member) client of a Raincore group.
///
/// Sans-io like everything else: drive it with `on_datagram` / `on_tick`
/// and drain `poll_outgoing` / `poll_outcome`.
#[derive(Debug)]
pub struct OpenClient {
    transport: Endpoint,
    members: Vec<NodeId>,
    next_seq: OriginSeq,
    inflight: HashMap<MsgId, PendingSubmit>,
    outcomes: VecDeque<OpenOutcome>,
}

impl OpenClient {
    /// Creates a client with id `id` (must be distinct from every group
    /// member's id) that may submit via any of `members`.
    pub fn new(
        id: NodeId,
        local_addrs: Vec<Addr>,
        peers: PeerTable,
        members: Vec<NodeId>,
        tcfg: TransportConfig,
    ) -> Result<Self> {
        if members.is_empty() {
            return Err(Error::Config("open client needs at least one member"));
        }
        Ok(OpenClient {
            transport: Endpoint::new(id, Incarnation::FIRST, local_addrs, peers, tcfg)?,
            members,
            next_seq: OriginSeq::default(),
            inflight: HashMap::new(),
            outcomes: VecDeque::new(),
        })
    }

    /// Submits `payload` for multicast into the group. Tries members in
    /// configured order, failing over on failure-on-delivery.
    pub fn submit(&mut self, now: Time, payload: Bytes) -> Result<OriginSeq> {
        let seq = self.next_seq;
        self.next_seq = seq.next();
        let mut remaining = self.members.clone();
        let first = remaining.remove(0);
        self.send_to(
            now,
            first,
            PendingSubmit {
                seq,
                payload,
                remaining,
            },
        )?;
        Ok(seq)
    }

    fn send_to(&mut self, now: Time, member: NodeId, pending: PendingSubmit) -> Result<()> {
        let msg = SessionMsg::Open(OpenSubmit {
            from: self.transport.id(),
            seq: pending.seq,
            payload: pending.payload.clone(),
        });
        let msg_id = self.transport.send(now, member, msg.encode_to_bytes())?;
        self.inflight.insert(msg_id, pending);
        Ok(())
    }

    /// Feeds a received datagram (acknowledgements).
    pub fn on_datagram(&mut self, now: Time, dgram: Datagram) {
        self.transport.on_datagram(now, dgram);
        self.drain(now);
    }

    /// Advances retransmission timers.
    pub fn on_tick(&mut self, now: Time) {
        self.transport.on_tick(now);
        self.drain(now);
    }

    fn drain(&mut self, now: Time) {
        while let Some(ev) = self.transport.poll_event() {
            match ev {
                TransportEvent::Delivered { msg_id, to } => {
                    if let Some(p) = self.inflight.remove(&msg_id) {
                        self.outcomes.push_back(OpenOutcome::Accepted {
                            seq: p.seq,
                            via: to,
                        });
                    }
                }
                TransportEvent::DeliveryFailed { msg_id, .. } => {
                    if let Some(mut p) = self.inflight.remove(&msg_id) {
                        if p.remaining.is_empty() {
                            self.outcomes.push_back(OpenOutcome::Failed { seq: p.seq });
                        } else {
                            let next = p.remaining.remove(0);
                            let _ = self.send_to(now, next, p);
                        }
                    }
                }
                TransportEvent::Received { .. } => {
                    // An external client receives nothing but acks.
                }
            }
        }
    }

    /// Earliest time `on_tick` has work to do.
    pub fn next_wakeup(&self) -> Option<Time> {
        self.transport.next_wakeup()
    }

    /// Drains one outgoing datagram.
    pub fn poll_outgoing(&mut self) -> Option<Datagram> {
        self.transport.poll_outgoing()
    }

    /// Drains one submission outcome.
    pub fn poll_outcome(&mut self) -> Option<OpenOutcome> {
        self.outcomes.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_round_trip() {
        let b = wrap_open(NodeId(9), OriginSeq(4), b"payload");
        assert_eq!(
            unwrap_open(&b),
            Some((NodeId(9), OriginSeq(4), Bytes::from_static(b"payload")))
        );
        assert_eq!(unwrap_open(b"RCLKxx"), None);
        assert_eq!(unwrap_open(b""), None);
        // Trailing garbage is rejected.
        let mut v = b.to_vec();
        v.push(0);
        assert_eq!(unwrap_open(&v), None);
    }

    #[test]
    fn client_requires_members() {
        let err = OpenClient::new(
            NodeId(50),
            vec![Addr::primary(NodeId(50))],
            PeerTable::new(),
            vec![],
            TransportConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, Error::Config(_)));
    }
}
