//! Events surfaced by the session service to the layers above it.

use bytes::Bytes;
use raincore_types::{DeliveryMode, GroupId, NodeId, OriginSeq, Ring};

/// A multicast message delivered to the application, in agreed (total)
/// order (§2.6).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// Originating node.
    pub origin: NodeId,
    /// Per-origin sequence number.
    pub seq: OriginSeq,
    /// Consistency level the originator requested.
    pub mode: DeliveryMode,
    /// Application payload.
    pub payload: Bytes,
}

/// Everything the session service can tell the application.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SessionEvent {
    /// A multicast message is delivered. Deliveries happen in the same
    /// (token) order at every member — the *agreed ordering* guarantee;
    /// `Safe`-mode messages are additionally delayed until every member
    /// is known to have received them.
    Delivery(Delivery),
    /// A multicast this node originated has been received by every member
    /// of the group — the atomicity confirmation (the token came back
    /// around, §2.6).
    MulticastAtomic {
        /// The sequence returned by `multicast`.
        seq: OriginSeq,
    },
    /// The authoritative membership recorded on the token changed.
    MembershipChanged {
        /// The new ring.
        ring: Ring,
        /// Members that appeared.
        added: Vec<NodeId>,
        /// Members that disappeared.
        removed: Vec<NodeId>,
    },
    /// The master lock (EATING state, §2.7) was acquired: until
    /// `release_master` is called, no other node is EATING and this node's
    /// changes to global data are authoritative.
    MasterAcquired,
    /// The master lock was released and the token forwarded.
    MasterReleased,
    /// This node entered the STARVING state and is invoking the 911
    /// protocol (diagnostics).
    Starving,
    /// This node won the 911 vote and regenerated the token (§2.3).
    TokenRegenerated {
        /// Sequence number of the regenerated token.
        seq: u64,
    },
    /// Two sub-groups merged into one (§2.4); this node performed the
    /// token merge.
    Merged {
        /// Group id of the sub-group that was absorbed.
        absorbed: GroupId,
    },
    /// The node shut itself down (critical resource lost, or `leave`).
    ShutDown {
        /// Human-readable reason.
        reason: String,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use raincore_types::DeliveryMode;

    #[test]
    fn delivery_is_plain_data() {
        let d = Delivery {
            origin: NodeId(1),
            seq: OriginSeq(4),
            mode: DeliveryMode::Agreed,
            payload: Bytes::from_static(b"x"),
        };
        let e = SessionEvent::Delivery(d.clone());
        assert_eq!(e, SessionEvent::Delivery(d));
    }
}
