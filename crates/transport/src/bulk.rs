//! Out-of-band bulk payload store.
//!
//! The Ring Paxos split (DESIGN.md §13) sends large multicast payloads
//! *around* the token: the origin unicasts a bulk frame to every member
//! while the token carries only the id manifest that fixes the delivery
//! order. [`BulkStore`] is the bounded `(origin, seq) → payload` cache
//! both sides of that split share:
//!
//! * at the **origin** it is the retransmit cache — the payload stays
//!   resident until the manifest entry retires from the token (everyone
//!   seen), so any member's NACK can be answered;
//! * at a **receiver** it buffers payloads that arrived before the token
//!   ordered their ids (bulk frames race the token by design), and keeps
//!   them after delivery until the watermark covers the ring so the
//!   receiver can serve NACKs for peers whose frame was lost.
//!
//! The store is capacity-bounded with oldest-first eviction: a burst
//! beyond the bound degrades to NACK-pulling from the origin (whose copy
//! is release-gated on retirement), never to unbounded memory. All
//! iteration orders are deterministic (`BTreeMap`) so the model checker
//! can digest buffered-bulk state canonically.

use bytes::Bytes;
use raincore_types::{NodeId, OriginSeq, StateDigest};
use std::collections::{BTreeMap, VecDeque};

/// Bulk id: the `(origin, per-origin seq)` pair the token's manifest
/// entries order.
pub type BulkId = (NodeId, OriginSeq);

/// Bounded `(origin, seq) → payload` cache for out-of-band dissemination.
#[derive(Debug, Clone)]
pub struct BulkStore {
    /// Maximum resident entries; oldest inserted evicted first when full.
    cap: usize,
    /// Resident payloads, deterministically ordered for digesting.
    entries: BTreeMap<BulkId, Bytes>,
    /// Insertion order for eviction. May hold stale ids (removed or
    /// re-inserted entries); stale fronts are skipped during eviction.
    order: VecDeque<BulkId>,
}

impl BulkStore {
    /// Creates a store holding at most `cap` payloads (`cap` is clamped
    /// to at least 1 so insertion always succeeds).
    pub fn new(cap: usize) -> Self {
        BulkStore {
            cap: cap.max(1),
            entries: BTreeMap::new(),
            order: VecDeque::new(),
        }
    }

    /// Inserts a payload for `id`, evicting the oldest entry if the store
    /// is full. Idempotent: re-inserting a resident id keeps the original
    /// payload (the first copy won any retransmission race).
    pub fn insert(&mut self, id: BulkId, payload: Bytes) {
        if self.entries.contains_key(&id) {
            return;
        }
        while self.entries.len() >= self.cap {
            match self.order.pop_front() {
                Some(old) => {
                    self.entries.remove(&old);
                }
                // Order queue exhausted while entries remain (cannot
                // happen: every insert pushes its id) — degrade by
                // clearing rather than looping forever.
                None => {
                    self.entries.clear();
                }
            }
        }
        self.entries.insert(id, payload);
        self.order.push_back(id);
        // Keep the eviction queue from accumulating stale ids without
        // rescanning on every remove: compact when it outgrows twice the
        // capacity bound.
        if self.order.len() > self.cap.saturating_mul(2) {
            let entries = &self.entries;
            self.order.retain(|k| entries.contains_key(k));
        }
    }

    /// The resident payload for `id`, if any.
    pub fn get(&self, id: BulkId) -> Option<&Bytes> {
        self.entries.get(&id)
    }

    /// True if `id` is resident.
    pub fn contains(&self, id: BulkId) -> bool {
        self.entries.contains_key(&id)
    }

    /// Releases the payload for `id` (retirement at the origin, watermark
    /// coverage at a receiver). Missing ids are fine.
    pub fn remove(&mut self, id: BulkId) {
        self.entries.remove(&id);
    }

    /// Iterates the resident bulk ids in deterministic (`BTreeMap`) order.
    pub fn keys(&self) -> impl Iterator<Item = BulkId> + '_ {
        self.entries.keys().copied()
    }

    /// Number of resident payloads.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Feeds the resident-id set (and payload bytes) into a model-checker
    /// state digest: two states differing only in buffered-bulk contents
    /// must not merge. Origins are canonicalized; the eviction queue is
    /// deliberately excluded (stale ids in it are unobservable).
    pub fn digest_into(&self, d: &mut StateDigest) {
        d.write_len(self.entries.len());
        for ((origin, seq), payload) in &self.entries {
            d.node(*origin);
            d.write_u64(seq.0);
            d.write_bytes(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(o: u32, s: u64) -> BulkId {
        (NodeId(o), OriginSeq(s))
    }

    #[test]
    fn stores_and_serves_payloads() {
        let mut s = BulkStore::new(8);
        s.insert(id(1, 0), Bytes::from_static(b"alpha"));
        s.insert(id(2, 0), Bytes::from_static(b"beta"));
        assert_eq!(s.get(id(1, 0)).map(|b| &b[..]), Some(&b"alpha"[..]));
        assert_eq!(s.get(id(2, 0)).map(|b| &b[..]), Some(&b"beta"[..]));
        assert!(s.get(id(3, 0)).is_none());
        assert_eq!(s.len(), 2);
        s.remove(id(1, 0));
        assert!(!s.contains(id(1, 0)));
        assert!(s.contains(id(2, 0)));
    }

    #[test]
    fn reinsert_keeps_first_payload() {
        let mut s = BulkStore::new(4);
        s.insert(id(1, 5), Bytes::from_static(b"first"));
        s.insert(id(1, 5), Bytes::from_static(b"second"));
        assert_eq!(s.get(id(1, 5)).map(|b| &b[..]), Some(&b"first"[..]));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn evicts_oldest_first_at_capacity() {
        let mut s = BulkStore::new(3);
        for i in 0..3 {
            s.insert(id(1, i), Bytes::from_static(b"x"));
        }
        s.insert(id(1, 3), Bytes::from_static(b"x"));
        assert!(!s.contains(id(1, 0)), "oldest entry evicted");
        assert!(s.contains(id(1, 1)));
        assert!(s.contains(id(1, 3)));
        assert_eq!(s.len(), 3);
        // Removing an entry leaves a stale id in the eviction queue;
        // eviction must skip it and still pick the true oldest.
        s.remove(id(1, 1));
        s.insert(id(1, 4), Bytes::from_static(b"x"));
        s.insert(id(1, 5), Bytes::from_static(b"x"));
        assert!(!s.contains(id(1, 2)));
        assert!(s.contains(id(1, 3)));
        assert!(s.contains(id(1, 4)));
        assert!(s.contains(id(1, 5)));
    }

    #[test]
    fn digest_distinguishes_buffered_contents() {
        use raincore_types::StateDigest;
        let fp = |s: &BulkStore| {
            let mut d = StateDigest::identity();
            s.digest_into(&mut d);
            d.finish()
        };
        let mut a = BulkStore::new(8);
        let mut b = BulkStore::new(8);
        assert_eq!(fp(&a), fp(&b));
        a.insert(id(1, 0), Bytes::from_static(b"payload"));
        assert_ne!(fp(&a), fp(&b), "resident id must change the digest");
        b.insert(id(1, 0), Bytes::from_static(b"different"));
        assert_ne!(fp(&a), fp(&b), "payload bytes must change the digest");
    }

    #[test]
    fn long_churn_keeps_order_queue_bounded() {
        let mut s = BulkStore::new(4);
        for i in 0..10_000u64 {
            s.insert(id(1, i), Bytes::from_static(b"x"));
            if i % 3 == 0 {
                s.remove(id(1, i));
            }
        }
        assert!(s.len() <= 4);
        assert!(
            s.order.len() <= 9,
            "eviction queue must stay bounded, got {}",
            s.order.len()
        );
    }
}
