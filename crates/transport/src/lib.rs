//! The Raincore Transport Service (§2.1 of the paper).
//!
//! An *atomic* reliable unicast built on an unreliable datagram interface.
//! It differs from TCP in exactly the three ways the paper lists:
//!
//! 1. **Atomic packet unicast with acknowledgement** — a message is either
//!    completely delivered or not delivered at all; there are no
//!    connections or streams, hence no connection state to track as nodes
//!    come and go. Messages larger than the MTU are fragmented and
//!    reassembled, but delivery to the upper layer is all-or-nothing.
//! 2. **Multiple physical addresses per node** — redundant links make the
//!    group resilient to link failures and less likely to partition. The
//!    send strategy over the addresses is configurable:
//!    [`SendStrategy::Sequential`] walks them one at a time,
//!    [`SendStrategy::Parallel`] fans every transmission out on all of
//!    them ([`SendStrategy`] lives in `raincore-types`).
//! 3. **Notifications both ways** — the upper layer hears when the
//!    acknowledgement arrives ([`TransportEvent::Delivered`]) *and* when
//!    all sending efforts have failed
//!    ([`TransportEvent::DeliveryFailed`]). The failure-on-delivery
//!    notification is the local-view failure detector that drives the
//!    session layer's aggressive membership protocol.
//!
//! The implementation is **sans-io**: an [`Endpoint`] consumes datagrams
//! and virtual time and produces datagrams and events through small
//! queues. The same code runs under the deterministic simulator and the
//! real UDP runtime.
//!
//! [`SendStrategy`]: raincore_types::config::SendStrategy
//! [`SendStrategy::Sequential`]: raincore_types::config::SendStrategy::Sequential
//! [`SendStrategy::Parallel`]: raincore_types::config::SendStrategy::Parallel

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bulk;
pub mod dedup;
pub mod endpoint;
pub mod frame;

pub use bulk::{BulkId, BulkStore};
pub use dedup::BulkDedup;
pub use endpoint::{Endpoint, PeerTable, TransportEvent, TransportObs, TransportStats};
pub use frame::Frame;
