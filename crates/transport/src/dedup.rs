//! Duplicate suppression for received messages.
//!
//! Retransmissions mean a receiver can see the same logical message more
//! than once (its acknowledgement may have been lost). The transport must
//! still acknowledge the duplicate — the sender needs the ack — but must
//! deliver the message to the upper layer exactly once.
//!
//! Message ids from one (sender, incarnation) are allocated monotonically,
//! so the tracker keeps a *watermark* (`all ids < watermark delivered`)
//! plus the sparse set of delivered ids above it. The set stays tiny in
//! practice because ids are delivered nearly in order, and memory is
//! bounded no matter how long the peer lives.

use raincore_types::{MsgId, StateDigest};
use std::collections::BTreeSet;

/// Exactly-once delivery tracker for one (peer, incarnation).
#[derive(Debug, Default, Clone)]
pub struct DedupWindow {
    /// Every id `< watermark` has been delivered.
    watermark: u64,
    /// Delivered ids `>= watermark` (sparse, compacted on insert).
    above: BTreeSet<u64>,
}

impl DedupWindow {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// True if `id` has already been delivered.
    pub fn contains(&self, id: MsgId) -> bool {
        id.0 < self.watermark || self.above.contains(&id.0)
    }

    /// Records `id` as delivered. Returns `true` if it was new (the caller
    /// should deliver), `false` if it was a duplicate.
    pub fn insert(&mut self, id: MsgId) -> bool {
        if self.contains(id) {
            return false;
        }
        self.above.insert(id.0);
        // Compact: slide the watermark over any now-contiguous prefix.
        while self.above.remove(&self.watermark) {
            self.watermark += 1;
        }
        true
    }

    /// Number of ids tracked above the watermark (diagnostics / tests).
    pub fn sparse_len(&self) -> usize {
        self.above.len()
    }

    /// Current watermark (diagnostics / tests).
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Feeds the full window state (watermark + sparse set) into a
    /// model-checker state digest. Message ids are per-sender counters,
    /// not node ids, so no canonicalization applies.
    pub fn digest_into(&self, d: &mut StateDigest) {
        d.write_u64(self.watermark);
        d.write_len(self.above.len());
        for &id in &self.above {
            d.write_u64(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn in_order_ids_keep_window_empty() {
        let mut w = DedupWindow::new();
        for i in 0..100 {
            assert!(w.insert(MsgId(i)), "id {i} should be new");
        }
        assert_eq!(w.sparse_len(), 0);
        assert_eq!(w.watermark(), 100);
    }

    #[test]
    fn duplicates_rejected() {
        let mut w = DedupWindow::new();
        assert!(w.insert(MsgId(0)));
        assert!(!w.insert(MsgId(0)));
        assert!(w.insert(MsgId(5)));
        assert!(!w.insert(MsgId(5)));
        assert!(w.contains(MsgId(0)));
        assert!(w.contains(MsgId(5)));
        assert!(!w.contains(MsgId(3)));
    }

    #[test]
    fn out_of_order_compacts_on_gap_fill() {
        let mut w = DedupWindow::new();
        for i in [2u64, 1, 4, 3] {
            assert!(w.insert(MsgId(i)));
        }
        assert_eq!(w.watermark(), 0);
        assert_eq!(w.sparse_len(), 4);
        assert!(w.insert(MsgId(0))); // fills the gap
        assert_eq!(w.watermark(), 5);
        assert_eq!(w.sparse_len(), 0);
    }

    proptest! {
        #[test]
        fn prop_each_id_delivered_exactly_once(
            ids in proptest::collection::vec(0u64..200, 1..400)
        ) {
            let mut w = DedupWindow::new();
            let mut delivered = std::collections::HashSet::new();
            for id in ids {
                let fresh = w.insert(MsgId(id));
                prop_assert_eq!(fresh, delivered.insert(id),
                    "tracker and reference disagree on id {}", id);
            }
            // Everything reported delivered is contained.
            for &id in &delivered {
                prop_assert!(w.contains(MsgId(id)));
            }
        }

        #[test]
        fn prop_window_stays_compact_for_near_order(
            perm_window in 1usize..4,
            n in 10u64..200,
        ) {
            // Ids arrive at most perm_window out of order → sparse set
            // never exceeds the permutation window.
            let mut ids: Vec<u64> = (0..n).collect();
            for chunk in ids.chunks_mut(perm_window) {
                chunk.reverse();
            }
            let mut w = DedupWindow::new();
            for id in ids {
                w.insert(MsgId(id));
                prop_assert!(w.sparse_len() <= perm_window);
            }
        }
    }
}
