//! Duplicate suppression for received messages.
//!
//! Retransmissions mean a receiver can see the same logical message more
//! than once (its acknowledgement may have been lost). The transport must
//! still acknowledge the duplicate — the sender needs the ack — but must
//! deliver the message to the upper layer exactly once.
//!
//! Message ids from one (sender, incarnation) are allocated monotonically,
//! so the tracker keeps a *watermark* (`all ids < watermark delivered`)
//! plus the sparse set of delivered ids above it. The set stays tiny in
//! practice because ids are delivered nearly in order, and memory is
//! bounded no matter how long the peer lives.
//!
//! Out-of-band bulk payloads need their own tracker ([`BulkDedup`]): a
//! retransmitted bulk payload — whether a NACK answer or an origin
//! resend — travels as a *fresh* transport message with a fresh wire
//! `MsgId`, so the per-peer window above cannot recognize it. The bulk
//! tracker keys on the session-level bulk id `(origin, seq)` instead,
//! which is stable across any number of retransmissions and across
//! *different senders* retransmitting the same payload.

use raincore_types::{MsgId, NodeId, OriginSeq, StateDigest};
use std::collections::{BTreeMap, BTreeSet};

/// Exactly-once delivery tracker for one (peer, incarnation).
#[derive(Debug, Default, Clone)]
pub struct DedupWindow {
    /// Every id `< watermark` has been delivered.
    watermark: u64,
    /// Delivered ids `>= watermark` (sparse, compacted on insert).
    above: BTreeSet<u64>,
}

impl DedupWindow {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// True if `id` has already been delivered.
    pub fn contains(&self, id: MsgId) -> bool {
        id.0 < self.watermark || self.above.contains(&id.0)
    }

    /// Records `id` as delivered. Returns `true` if it was new (the caller
    /// should deliver), `false` if it was a duplicate.
    pub fn insert(&mut self, id: MsgId) -> bool {
        if self.contains(id) {
            return false;
        }
        self.above.insert(id.0);
        // Compact: slide the watermark over any now-contiguous prefix.
        while self.above.remove(&self.watermark) {
            self.watermark += 1;
        }
        true
    }

    /// Number of ids tracked above the watermark (diagnostics / tests).
    pub fn sparse_len(&self) -> usize {
        self.above.len()
    }

    /// Current watermark (diagnostics / tests).
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Feeds the full window state (watermark + sparse set) into a
    /// model-checker state digest. Message ids are per-sender counters,
    /// not node ids, so no canonicalization applies.
    pub fn digest_into(&self, d: &mut StateDigest) {
        d.write_u64(self.watermark);
        d.write_len(self.above.len());
        for &id in &self.above {
            d.write_u64(id);
        }
    }
}

/// Exactly-once acceptance tracker for out-of-band bulk payloads, keyed
/// by the session-level bulk id `(origin, seq)`.
///
/// The wire-seq window ([`DedupWindow`]) only suppresses duplicates of
/// one *transport message*; every bulk retransmission is a new transport
/// message, so without this tracker a NACK answer racing the original
/// frame (or a duplicated datagram of a re-send) would hand the same
/// payload to the session twice. Per-origin seqs are monotonic, so each
/// origin gets its own watermark window and memory stays bounded.
#[derive(Debug, Default, Clone)]
pub struct BulkDedup {
    per_origin: BTreeMap<NodeId, DedupWindow>,
}

impl BulkDedup {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// True if the payload for `(origin, seq)` has already been accepted.
    pub fn contains(&self, origin: NodeId, seq: OriginSeq) -> bool {
        self.per_origin
            .get(&origin)
            .is_some_and(|w| w.contains(MsgId(seq.0)))
    }

    /// Records the bulk id as accepted. Returns `true` if it was new (the
    /// caller should buffer/deliver the payload), `false` on a duplicate.
    pub fn insert(&mut self, origin: NodeId, seq: OriginSeq) -> bool {
        self.per_origin
            .entry(origin)
            .or_default()
            .insert(MsgId(seq.0))
    }

    /// Feeds the full per-origin window state into a model-checker state
    /// digest (origins canonicalized, seqs are plain counters).
    pub fn digest_into(&self, d: &mut StateDigest) {
        d.write_len(self.per_origin.len());
        for (origin, w) in &self.per_origin {
            d.node(*origin);
            w.digest_into(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn in_order_ids_keep_window_empty() {
        let mut w = DedupWindow::new();
        for i in 0..100 {
            assert!(w.insert(MsgId(i)), "id {i} should be new");
        }
        assert_eq!(w.sparse_len(), 0);
        assert_eq!(w.watermark(), 100);
    }

    #[test]
    fn duplicates_rejected() {
        let mut w = DedupWindow::new();
        assert!(w.insert(MsgId(0)));
        assert!(!w.insert(MsgId(0)));
        assert!(w.insert(MsgId(5)));
        assert!(!w.insert(MsgId(5)));
        assert!(w.contains(MsgId(0)));
        assert!(w.contains(MsgId(5)));
        assert!(!w.contains(MsgId(3)));
    }

    #[test]
    fn out_of_order_compacts_on_gap_fill() {
        let mut w = DedupWindow::new();
        for i in [2u64, 1, 4, 3] {
            assert!(w.insert(MsgId(i)));
        }
        assert_eq!(w.watermark(), 0);
        assert_eq!(w.sparse_len(), 4);
        assert!(w.insert(MsgId(0))); // fills the gap
        assert_eq!(w.watermark(), 5);
        assert_eq!(w.sparse_len(), 0);
    }

    /// Pins the bulk-retransmission double-delivery fix: a retransmitted
    /// bulk payload arrives as a fresh transport message (fresh wire
    /// `MsgId`), so the per-peer wire-seq window happily accepts it —
    /// only the bulk-id tracker can reject it.
    #[test]
    fn retransmitted_bulk_payload_cannot_double_deliver() {
        let origin = NodeId(3);
        let seq = OriginSeq(7);

        // The wire-seq window sees two distinct transport messages and
        // accepts both: this is exactly the hole BulkDedup closes.
        let mut wire = DedupWindow::new();
        assert!(wire.insert(MsgId(100)), "original frame, wire id 100");
        assert!(
            wire.insert(MsgId(101)),
            "retransmit travels under a fresh wire id and passes wire dedup"
        );

        let mut bulk = BulkDedup::new();
        assert!(bulk.insert(origin, seq), "original payload accepted");
        assert!(
            !bulk.insert(origin, seq),
            "retransmit of the same bulk id must be rejected"
        );
        // A NACK answer served by a *different* holder is still the same
        // bulk id — rejected no matter who sent it.
        assert!(!bulk.insert(origin, seq));
        assert!(bulk.contains(origin, seq));
        // Other ids are unaffected: same origin next seq, other origin
        // same seq.
        assert!(bulk.insert(origin, OriginSeq(8)));
        assert!(bulk.insert(NodeId(4), seq));
    }

    #[test]
    fn bulk_dedup_windows_are_per_origin_and_compact() {
        let mut bulk = BulkDedup::new();
        for s in 0..50 {
            assert!(bulk.insert(NodeId(1), OriginSeq(s)));
            assert!(bulk.insert(NodeId(2), OriginSeq(s)));
        }
        // In-order seqs ride the watermark: nothing accumulates.
        assert_eq!(bulk.per_origin[&NodeId(1)].sparse_len(), 0);
        assert_eq!(bulk.per_origin[&NodeId(1)].watermark(), 50);
        assert!(bulk.contains(NodeId(1), OriginSeq(0)));
        assert!(!bulk.contains(NodeId(3), OriginSeq(0)));
    }

    proptest! {
        #[test]
        fn prop_each_id_delivered_exactly_once(
            ids in proptest::collection::vec(0u64..200, 1..400)
        ) {
            let mut w = DedupWindow::new();
            let mut delivered = std::collections::HashSet::new();
            for id in ids {
                let fresh = w.insert(MsgId(id));
                prop_assert_eq!(fresh, delivered.insert(id),
                    "tracker and reference disagree on id {}", id);
            }
            // Everything reported delivered is contained.
            for &id in &delivered {
                prop_assert!(w.contains(MsgId(id)));
            }
        }

        #[test]
        fn prop_window_stays_compact_for_near_order(
            perm_window in 1usize..4,
            n in 10u64..200,
        ) {
            // Ids arrive at most perm_window out of order → sparse set
            // never exceeds the permutation window.
            let mut ids: Vec<u64> = (0..n).collect();
            for chunk in ids.chunks_mut(perm_window) {
                chunk.reverse();
            }
            let mut w = DedupWindow::new();
            for id in ids {
                w.insert(MsgId(id));
                prop_assert!(w.sparse_len() <= perm_window);
            }
        }
    }
}
