//! Transport frame format.
//!
//! Two frames cross the wire: `DATA` (one fragment of a logical message)
//! and `ACK` (per-fragment acknowledgement). The incarnation field lets
//! receivers discard ghosts of a peer's previous life and lets senders
//! discard acknowledgements addressed to theirs.

use bytes::Bytes;
use raincore_types::wire::{Reader, WireDecode, WireEncode, WireError, WireResult, Writer};
use raincore_types::{Incarnation, MsgId, NodeId};

/// A transport-layer frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// One fragment of a logical message.
    Data {
        /// Sending node.
        from: NodeId,
        /// Sender's incarnation.
        inc: Incarnation,
        /// Logical message id, unique per (sender, incarnation).
        msg_id: MsgId,
        /// Index of this fragment.
        frag_index: u32,
        /// Total number of fragments in the message.
        frag_count: u32,
        /// Fragment payload.
        payload: Bytes,
    },
    /// Acknowledgement of one fragment.
    Ack {
        /// Acknowledging node (the receiver of the DATA frame).
        from: NodeId,
        /// Incarnation of the *original sender* being acknowledged, echoed
        /// back so a restarted sender ignores stale acks.
        inc: Incarnation,
        /// Message id being acknowledged.
        msg_id: MsgId,
        /// Fragment index being acknowledged.
        frag_index: u32,
    },
}

impl Frame {
    /// Short kind string for traces.
    pub fn kind(&self) -> &'static str {
        match self {
            Frame::Data { .. } => "DATA",
            Frame::Ack { .. } => "ACK",
        }
    }
}

impl WireEncode for Frame {
    fn encode(&self, w: &mut Writer) {
        match self {
            Frame::Data {
                from,
                inc,
                msg_id,
                frag_index,
                frag_count,
                payload,
            } => {
                w.put_u8(0);
                from.encode(w);
                inc.encode(w);
                msg_id.encode(w);
                w.put_varint(u64::from(*frag_index));
                w.put_varint(u64::from(*frag_count));
                w.put_bytes(payload);
            }
            Frame::Ack {
                from,
                inc,
                msg_id,
                frag_index,
            } => {
                w.put_u8(1);
                from.encode(w);
                inc.encode(w);
                msg_id.encode(w);
                w.put_varint(u64::from(*frag_index));
            }
        }
    }
}

impl WireDecode for Frame {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        match r.get_u8()? {
            0 => Ok(Frame::Data {
                from: NodeId::decode(r)?,
                inc: Incarnation::decode(r)?,
                msg_id: MsgId::decode(r)?,
                frag_index: r.get_varint()? as u32,
                frag_count: r.get_varint()? as u32,
                payload: r.get_bytes()?,
            }),
            1 => Ok(Frame::Ack {
                from: NodeId::decode(r)?,
                inc: Incarnation::decode(r)?,
                msg_id: MsgId::decode(r)?,
                frag_index: r.get_varint()? as u32,
            }),
            tag => Err(WireError::BadTag { ty: "Frame", tag }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip_data() {
        let f = Frame::Data {
            from: NodeId(3),
            inc: Incarnation(2),
            msg_id: MsgId(77),
            frag_index: 1,
            frag_count: 4,
            payload: Bytes::from_static(b"chunk"),
        };
        let buf = f.encode_to_bytes();
        assert_eq!(Frame::decode_from_bytes(&buf).unwrap(), f);
        assert_eq!(f.kind(), "DATA");
    }

    #[test]
    fn round_trip_ack() {
        let f = Frame::Ack {
            from: NodeId(9),
            inc: Incarnation(0),
            msg_id: MsgId(1),
            frag_index: 0,
        };
        let buf = f.encode_to_bytes();
        assert_eq!(Frame::decode_from_bytes(&buf).unwrap(), f);
        assert_eq!(f.kind(), "ACK");
    }

    #[test]
    fn bad_tag_rejected() {
        assert!(matches!(
            Frame::decode_from_bytes(&[7]),
            Err(WireError::BadTag { ty: "Frame", .. })
        ));
    }

    proptest! {
        #[test]
        fn prop_round_trip(
            from in 0u32..1000,
            inc in 0u32..10,
            msg in any::<u64>(),
            idx in 0u32..64,
            cnt in 1u32..64,
            payload in proptest::collection::vec(any::<u8>(), 0..256),
        ) {
            let f = Frame::Data {
                from: NodeId(from),
                inc: Incarnation(inc),
                msg_id: MsgId(msg),
                frag_index: idx,
                frag_count: cnt,
                payload: Bytes::from(payload),
            };
            let buf = f.encode_to_bytes();
            prop_assert_eq!(Frame::decode_from_bytes(&buf).unwrap(), f);
        }

        #[test]
        fn prop_garbage_never_panics(data in proptest::collection::vec(any::<u8>(), 0..128)) {
            let _ = Frame::decode_from_bytes(&data);
        }
    }
}
