//! The transport endpoint state machine.
//!
//! One [`Endpoint`] lives on each node. It is sans-io: the driver (the
//! deterministic simulator or the UDP runtime) feeds it received datagrams
//! via [`Endpoint::on_datagram`] and the current time via
//! [`Endpoint::on_tick`], and drains outgoing datagrams
//! ([`Endpoint::poll_outgoing`]) and upper-layer events
//! ([`Endpoint::poll_event`]).

use crate::dedup::DedupWindow;
use crate::frame::Frame;
use bytes::Bytes;
use raincore_net::{Addr, Datagram, PacketClass};
use raincore_types::config::SendStrategy;
use raincore_types::wire::{WireDecode, WireEncode};
#[cfg(test)]
use raincore_types::Duration;
use raincore_types::{
    Error, Incarnation, MsgId, NodeId, Result, StateDigest, Time, TransportConfig,
};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Upper bound on fragments per message: guards reassembly memory against
/// corrupt or hostile frag counts.
const MAX_FRAGS: u32 = 4096;

/// Events surfaced to the session layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportEvent {
    /// The destination acknowledged every fragment: the message is
    /// delivered (atomically — the peer has the whole message).
    Delivered {
        /// Id returned by [`Endpoint::send`].
        msg_id: MsgId,
        /// Destination node.
        to: NodeId,
    },
    /// All sending efforts failed: every configured retry on every
    /// physical address went unacknowledged. This is the paper's
    /// *failure-on-delivery* notification — the session layer treats it
    /// as a local-view failure detection of `to` (§2.2).
    DeliveryFailed {
        /// Id returned by [`Endpoint::send`].
        msg_id: MsgId,
        /// Destination node now suspected failed/disconnected.
        to: NodeId,
    },
    /// A complete message arrived from a peer (exactly-once).
    Received {
        /// Originating node.
        from: NodeId,
        /// The reassembled payload.
        payload: Bytes,
    },
}

/// Addresses of every peer this endpoint may talk to.
///
/// Each node can expose several physical addresses (§2.1); the order of
/// the address list is the order the [`SendStrategy::Sequential`] walk
/// tries them in.
#[derive(Clone, Debug, Default)]
pub struct PeerTable {
    map: HashMap<NodeId, Vec<Addr>>,
}

impl PeerTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// A table where every node in `nodes` has `nics` addresses
    /// (`Addr { node, nic 0..nics }`) — the simulator's convention.
    pub fn full_mesh(nodes: impl IntoIterator<Item = NodeId>, nics: u8) -> Self {
        let mut t = PeerTable::new();
        for n in nodes {
            t.set(n, (0..nics.max(1)).map(|k| Addr::new(n, k)).collect());
        }
        t
    }

    /// Sets (replaces) a peer's address list.
    pub fn set(&mut self, node: NodeId, addrs: Vec<Addr>) {
        self.map.insert(node, addrs);
    }

    /// Removes a peer entirely.
    pub fn remove(&mut self, node: NodeId) {
        self.map.remove(&node);
    }

    /// The peer's addresses, if known.
    pub fn addrs(&self, node: NodeId) -> Option<&[Addr]> {
        self.map.get(&node).map(|v| v.as_slice())
    }

    /// Number of known peers.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no peers are known.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Counters exposed for tests and experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Logical messages accepted by [`Endpoint::send`].
    pub msgs_sent: u64,
    /// Messages fully acknowledged.
    pub msgs_delivered: u64,
    /// Messages that ended in failure-on-delivery.
    pub msgs_failed: u64,
    /// Complete messages handed to the upper layer.
    pub msgs_received: u64,
    /// DATA frames put on the wire (including retransmissions).
    pub data_frames_sent: u64,
    /// ACK frames put on the wire.
    pub acks_sent: u64,
    /// DATA frame retransmissions.
    pub retransmissions: u64,
    /// Duplicate logical messages suppressed.
    pub duplicates_dropped: u64,
    /// Frames dropped because they carried a stale incarnation.
    pub stale_dropped: u64,
}

/// Latency histograms maintained by the endpoint. The handles share their
/// buckets when cloned, so a harness can attach them to a
/// [`raincore_obs::Registry`] once and read percentiles thereafter.
#[derive(Clone, Debug, Default)]
pub struct TransportObs {
    /// [`Endpoint::send`] → final fragment acknowledged: the full-message
    /// round-trip time, including any retransmissions and link failovers.
    pub rtt: raincore_obs::Histogram,
    /// [`Endpoint::send`] → failure-on-delivery notification: how long the
    /// local-view failure detector took to give up on the peer.
    pub failure_latency: raincore_obs::Histogram,
}

#[derive(Debug)]
struct PendingSend {
    to: NodeId,
    frags: Vec<Bytes>,
    acked: Vec<bool>,
    /// Index into the peer's address list (sequential strategy).
    addr_index: usize,
    /// Transmissions performed at the current address (sequential) or in
    /// total (parallel).
    attempts: u32,
    next_retry: Time,
    /// When [`Endpoint::send`] accepted the message (for RTT/failure
    /// latency histograms).
    sent_at: Time,
}

impl PendingSend {
    fn all_acked(&self) -> bool {
        self.acked.iter().all(|&a| a)
    }
}

#[derive(Debug)]
struct Reassembly {
    frags: Vec<Option<Bytes>>,
    received: usize,
}

/// The per-node transport endpoint. See the crate docs for semantics.
#[derive(Debug)]
pub struct Endpoint {
    id: NodeId,
    inc: Incarnation,
    cfg: TransportConfig,
    class: PacketClass,
    local_addrs: Vec<Addr>,
    peers: PeerTable,
    next_msg_id: u64,
    pending: BTreeMap<MsgId, PendingSend>,
    /// Latest known incarnation and dedup window per peer.
    dedup: HashMap<NodeId, (Incarnation, DedupWindow)>,
    reasm: HashMap<(NodeId, MsgId), Reassembly>,
    outbox: VecDeque<Datagram>,
    events: VecDeque<TransportEvent>,
    stats: TransportStats,
    obs: TransportObs,
}

impl Endpoint {
    /// Creates an endpoint for node `id` at incarnation `inc` with the
    /// given local addresses (one per NIC; must be non-empty).
    pub fn new(
        id: NodeId,
        inc: Incarnation,
        local_addrs: Vec<Addr>,
        peers: PeerTable,
        cfg: TransportConfig,
    ) -> Result<Self> {
        cfg.validate().map_err(Error::Config)?;
        if local_addrs.is_empty() {
            return Err(Error::Config("endpoint needs at least one local address"));
        }
        Ok(Endpoint {
            id,
            inc,
            cfg,
            class: PacketClass::Control,
            local_addrs,
            peers,
            next_msg_id: 0,
            pending: BTreeMap::new(),
            dedup: HashMap::new(),
            reasm: HashMap::new(),
            outbox: VecDeque::new(),
            events: VecDeque::new(),
            stats: TransportStats::default(),
            obs: TransportObs::default(),
        })
    }

    /// This endpoint's node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// This endpoint's incarnation.
    pub fn incarnation(&self) -> Incarnation {
        self.inc
    }

    /// Counter snapshot.
    pub fn stats(&self) -> TransportStats {
        self.stats
    }

    /// Latency histograms (RTT, failure-detection latency).
    pub fn obs(&self) -> &TransportObs {
        &self.obs
    }

    /// Feeds every behavior-relevant piece of endpoint state into a
    /// model-checker state digest.
    ///
    /// `payload_digest` is how upper-layer payload bytes (message
    /// fragments, reassembly buffers, queued events) enter the digest —
    /// the caller decides whether to hash them raw or decode them
    /// structurally for id canonicalization. Deliberately excluded:
    /// `cfg`/`class`/`peers` (constant over a model run) and
    /// `stats`/`obs`/`sent_at` (observability only — they never feed back
    /// into protocol behavior).
    pub fn digest_into(
        &self,
        now: Time,
        d: &mut StateDigest,
        payload_digest: &dyn Fn(&[u8], &mut StateDigest),
    ) {
        d.node(self.id);
        d.write_u64(self.inc.0.into());
        d.write_u64(self.next_msg_id);
        d.write_len(self.local_addrs.len());
        for a in &self.local_addrs {
            d.node(a.node);
            d.write_u8(a.nic);
        }
        d.write_len(self.pending.len());
        for (msg_id, p) in &self.pending {
            d.write_u64(msg_id.0);
            d.node(p.to);
            d.write_len(p.addr_index);
            d.write_u32(p.attempts);
            d.time_rel(p.next_retry, now);
            d.write_len(p.acked.len());
            for &a in &p.acked {
                d.write_bool(a);
            }
            for f in &p.frags {
                payload_digest(f, d);
            }
        }
        let mut dedup_ids: Vec<NodeId> = self.dedup.keys().copied().collect();
        dedup_ids.sort_unstable_by(|a, b| d.canon_cmp(*a, *b));
        d.write_len(dedup_ids.len());
        for id in dedup_ids {
            let (inc, window) = &self.dedup[&id];
            d.node(id);
            d.write_u64(inc.0.into());
            window.digest_into(d);
        }
        let mut reasm_keys: Vec<(NodeId, MsgId)> = self.reasm.keys().copied().collect();
        reasm_keys.sort_unstable_by(|a, b| d.canon_cmp(a.0, b.0).then(a.1.cmp(&b.1)));
        d.write_len(reasm_keys.len());
        for key in reasm_keys {
            let r = &self.reasm[&key];
            d.node(key.0);
            d.write_u64(key.1 .0);
            d.write_len(r.received);
            d.write_len(r.frags.len());
            for f in &r.frags {
                match f {
                    Some(b) => {
                        d.write_bool(true);
                        payload_digest(b, d);
                    }
                    None => d.write_bool(false),
                }
            }
        }
        // Outbox and event queue are normally drained between model-checker
        // steps, but digest them fully so an undrained queue can never
        // merge two genuinely different states.
        d.write_len(self.outbox.len());
        for dg in &self.outbox {
            d.node(dg.src.node);
            d.write_u8(dg.src.nic);
            d.node(dg.dst.node);
            d.write_u8(dg.dst.nic);
            d.write_u8(matches!(dg.class, PacketClass::Data) as u8);
            payload_digest(&dg.payload, d);
        }
        d.write_len(self.events.len());
        for ev in &self.events {
            match ev {
                TransportEvent::Delivered { msg_id, to } => {
                    d.tag(0);
                    d.write_u64(msg_id.0);
                    d.node(*to);
                }
                TransportEvent::DeliveryFailed { msg_id, to } => {
                    d.tag(1);
                    d.write_u64(msg_id.0);
                    d.node(*to);
                }
                TransportEvent::Received { from, payload } => {
                    d.tag(2);
                    d.node(*from);
                    payload_digest(payload, d);
                }
            }
        }
    }

    /// Mutable access to the peer table (e.g. to learn a joiner's
    /// addresses at runtime).
    pub fn peers_mut(&mut self) -> &mut PeerTable {
        &mut self.peers
    }

    /// Read access to the peer table.
    pub fn peers(&self) -> &PeerTable {
        &self.peers
    }

    /// Sends `payload` reliably and atomically to `to`. Returns the
    /// message id; completion is reported later as
    /// [`TransportEvent::Delivered`] or [`TransportEvent::DeliveryFailed`].
    pub fn send(&mut self, now: Time, to: NodeId, payload: Bytes) -> Result<MsgId> {
        let n_addrs = self.peers.addrs(to).map(<[Addr]>::len).unwrap_or(0);
        if n_addrs == 0 {
            return Err(Error::UnknownNode(to));
        }
        let msg_id = MsgId(self.next_msg_id);
        self.next_msg_id += 1;
        self.stats.msgs_sent += 1;

        let chunk = self.cfg.mtu;
        let frags: Vec<Bytes> = if payload.is_empty() {
            vec![Bytes::new()]
        } else {
            (0..payload.len())
                .step_by(chunk)
                .map(|off| payload.slice(off..payload.len().min(off + chunk)))
                .collect()
        };
        let n = frags.len();
        let mut p = PendingSend {
            to,
            frags,
            acked: vec![false; n],
            addr_index: 0,
            attempts: 1,
            next_retry: now + self.cfg.retry_timeout,
            sent_at: now,
        };
        self.transmit_unacked(&mut p, msg_id);
        self.pending.insert(msg_id, p);
        Ok(msg_id)
    }

    /// Sends `payload` to `to` *unreliably*: identical fragmentation and
    /// framing to [`Endpoint::send`], but fire-and-forget — no
    /// retransmission state is kept, so neither
    /// [`TransportEvent::Delivered`] nor
    /// [`TransportEvent::DeliveryFailed`] is ever reported for it.
    ///
    /// This is the dissemination path for out-of-band bulk payloads: the
    /// session layer recovers losses end-to-end by NACK-pulling against
    /// the token's id manifest, and a lost bulk frame must *not* feed the
    /// failure-on-delivery detector (losing best-effort bulk traffic is
    /// not evidence the peer is down). The receiver still acks each
    /// fragment — harmless, since no pending entry is listening.
    pub fn send_unreliable(&mut self, now: Time, to: NodeId, payload: Bytes) -> Result<MsgId> {
        let n_addrs = self.peers.addrs(to).map(<[Addr]>::len).unwrap_or(0);
        if n_addrs == 0 {
            return Err(Error::UnknownNode(to));
        }
        let msg_id = MsgId(self.next_msg_id);
        self.next_msg_id += 1;
        self.stats.msgs_sent += 1;

        let chunk = self.cfg.mtu;
        let frags: Vec<Bytes> = if payload.is_empty() {
            vec![Bytes::new()]
        } else {
            (0..payload.len())
                .step_by(chunk)
                .map(|off| payload.slice(off..payload.len().min(off + chunk)))
                .collect()
        };
        let n = frags.len();
        // A transient send record drives the shared transmit path once and
        // is dropped: nothing enters `pending`, so there are no retries,
        // no failure notification, and acks for it fall on the floor.
        let mut p = PendingSend {
            to,
            frags,
            acked: vec![false; n],
            addr_index: 0,
            attempts: 1,
            next_retry: now + self.cfg.retry_timeout,
            sent_at: now,
        };
        self.transmit_unacked(&mut p, msg_id);
        Ok(msg_id)
    }

    /// Abandons an in-flight send without a failure notification (used
    /// when the upper layer has already decided the peer is gone).
    pub fn abort(&mut self, msg_id: MsgId) -> bool {
        self.pending.remove(&msg_id).is_some()
    }

    /// Number of in-flight (unacknowledged) messages.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Feeds a received datagram into the endpoint. Undecodable payloads
    /// are dropped silently (like garbage on a UDP port).
    pub fn on_datagram(&mut self, now: Time, dgram: Datagram) {
        let Ok(frame) = Frame::decode_from_bytes(&dgram.payload) else {
            return;
        };
        match frame {
            Frame::Data {
                from,
                inc,
                msg_id,
                frag_index,
                frag_count,
                payload,
            } => {
                self.on_data(
                    dgram.src, dgram.dst, from, inc, msg_id, frag_index, frag_count, payload,
                );
            }
            Frame::Ack {
                from: _,
                inc,
                msg_id,
                frag_index,
            } => {
                self.on_ack(now, inc, msg_id, frag_index);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_data(
        &mut self,
        wire_src: Addr,
        wire_dst: Addr,
        from: NodeId,
        inc: Incarnation,
        msg_id: MsgId,
        frag_index: u32,
        frag_count: u32,
        payload: Bytes,
    ) {
        if frag_count == 0 || frag_count > MAX_FRAGS || frag_index >= frag_count {
            return; // malformed
        }
        let entry = self
            .dedup
            .entry(from)
            .or_insert_with(|| (inc, DedupWindow::new()));
        if inc < entry.0 {
            self.stats.stale_dropped += 1;
            return; // ghost of the peer's previous life — no ack
        }
        if inc > entry.0 {
            // Peer restarted: fresh dedup state, discard partial reassemblies.
            *entry = (inc, DedupWindow::new());
            self.reasm.retain(|(n, _), _| *n != from);
        }

        // Always acknowledge current-incarnation data, even duplicates:
        // our previous ack may have been lost. Reply on the link the data
        // arrived on.
        let ack = Frame::Ack {
            from: self.id,
            inc,
            msg_id,
            frag_index,
        };
        self.outbox.push_back(Datagram {
            src: wire_dst,
            dst: wire_src,
            class: self.class,
            payload: ack.encode_to_bytes(),
        });
        self.stats.acks_sent += 1;

        if entry.1.contains(msg_id) {
            self.stats.duplicates_dropped += 1;
            return;
        }

        let r = self
            .reasm
            .entry((from, msg_id))
            .or_insert_with(|| Reassembly {
                frags: vec![None; frag_count as usize],
                received: 0,
            });
        if r.frags.len() != frag_count as usize {
            return; // inconsistent frag_count across fragments — corrupt
        }
        let slot = &mut r.frags[frag_index as usize];
        if slot.is_none() {
            *slot = Some(payload);
            r.received += 1;
        }
        if r.received == r.frags.len() {
            let Some(r) = self.reasm.remove(&(from, msg_id)) else {
                return;
            };
            let total: usize = r
                .frags
                .iter()
                .map(|f| f.as_ref().map_or(0, Bytes::len))
                .sum();
            let mut whole = Vec::with_capacity(total);
            for f in r.frags.into_iter().flatten() {
                whole.extend_from_slice(&f);
            }
            if let Some(entry) = self.dedup.get_mut(&from) {
                entry.1.insert(msg_id);
            }
            self.stats.msgs_received += 1;
            self.events.push_back(TransportEvent::Received {
                from,
                payload: Bytes::from(whole),
            });
        }
    }

    fn on_ack(&mut self, now: Time, inc: Incarnation, msg_id: MsgId, frag_index: u32) {
        if inc != self.inc {
            self.stats.stale_dropped += 1;
            return; // ack for a previous life of this node
        }
        let Some(p) = self.pending.get_mut(&msg_id) else {
            return; // already completed (late duplicate ack)
        };
        let Some(flag) = p.acked.get_mut(frag_index as usize) else {
            return;
        };
        *flag = true;
        if p.all_acked() {
            let Some(p) = self.pending.remove(&msg_id) else {
                return;
            };
            self.stats.msgs_delivered += 1;
            self.obs.rtt.record(now.since(p.sent_at).as_nanos());
            self.events
                .push_back(TransportEvent::Delivered { msg_id, to: p.to });
        }
    }

    /// Advances the retransmission machinery to `now`.
    pub fn on_tick(&mut self, now: Time) {
        let due: Vec<MsgId> = self
            .pending
            .iter()
            .filter(|(_, p)| p.next_retry <= now)
            .map(|(&id, _)| id)
            .collect();
        for msg_id in due {
            let Some(mut p) = self.pending.remove(&msg_id) else {
                continue;
            };
            let n_addrs = self.peers.addrs(p.to).map(<[Addr]>::len).unwrap_or(0);
            if n_addrs == 0 {
                // Peer vanished from the table mid-send.
                self.fail(now, msg_id, p.to, p.sent_at);
                continue;
            }
            if p.attempts >= self.cfg.max_retries {
                let exhausted = match self.cfg.strategy {
                    // Parallel already uses every address each attempt.
                    SendStrategy::Parallel => true,
                    SendStrategy::Sequential => {
                        p.addr_index += 1;
                        p.attempts = 0;
                        p.addr_index >= n_addrs
                    }
                };
                if exhausted {
                    self.fail(now, msg_id, p.to, p.sent_at);
                    continue;
                }
            }
            p.attempts += 1;
            self.stats.retransmissions += 1;
            p.next_retry = now + self.cfg.retry_timeout;
            self.transmit_unacked(&mut p, msg_id);
            self.pending.insert(msg_id, p);
        }
    }

    fn fail(&mut self, now: Time, msg_id: MsgId, to: NodeId, sent_at: Time) {
        self.stats.msgs_failed += 1;
        self.obs
            .failure_latency
            .record(now.since(sent_at).as_nanos());
        self.events
            .push_back(TransportEvent::DeliveryFailed { msg_id, to });
    }

    /// Earliest time at which [`Endpoint::on_tick`] has work to do.
    pub fn next_wakeup(&self) -> Option<Time> {
        self.pending.values().map(|p| p.next_retry).min()
    }

    /// Drains one outgoing datagram, if any.
    pub fn poll_outgoing(&mut self) -> Option<Datagram> {
        self.outbox.pop_front()
    }

    /// Drains one upper-layer event, if any.
    pub fn poll_event(&mut self) -> Option<TransportEvent> {
        self.events.pop_front()
    }

    fn transmit_unacked(&mut self, p: &mut PendingSend, msg_id: MsgId) {
        let peer_addrs: Vec<Addr> = match self.peers.addrs(p.to) {
            Some(a) if !a.is_empty() => a.to_vec(),
            _ => return,
        };
        let targets: Vec<Addr> = match self.cfg.strategy {
            SendStrategy::Sequential => {
                let i = p.addr_index.min(peer_addrs.len() - 1);
                vec![peer_addrs[i]]
            }
            SendStrategy::Parallel => peer_addrs,
        };
        let frag_count = p.frags.len() as u32;
        for dst in targets {
            // Pair the peer's k-th address with our k-th NIC so redundant
            // links ride physically separate networks.
            let src = self.local_addrs[(dst.nic as usize) % self.local_addrs.len()];
            for (i, frag) in p.frags.iter().enumerate() {
                if p.acked[i] {
                    continue;
                }
                let frame = Frame::Data {
                    from: self.id,
                    inc: self.inc,
                    msg_id,
                    frag_index: i as u32,
                    frag_count,
                    payload: frag.clone(),
                };
                self.outbox.push_back(Datagram {
                    src,
                    dst,
                    class: self.class,
                    payload: frame.encode_to_bytes(),
                });
                self.stats.data_frames_sent += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raincore_net::{SimNet, SimNetConfig};

    fn mk_pair(cfg: TransportConfig, nics: u8) -> (Endpoint, Endpoint) {
        let peers = PeerTable::full_mesh([NodeId(0), NodeId(1)], nics);
        let mk = |id: u32| {
            Endpoint::new(
                NodeId(id),
                Incarnation::FIRST,
                (0..nics).map(|k| Addr::new(NodeId(id), k)).collect(),
                peers.clone(),
                cfg.clone(),
            )
            .unwrap()
        };
        (mk(0), mk(1))
    }

    /// Drives both endpoints and the network until quiescent or `limit`.
    fn pump(net: &mut SimNet, eps: &mut [&mut Endpoint], mut now: Time, limit: Time) -> Time {
        loop {
            // Drain outboxes onto the wire.
            for ep in eps.iter_mut() {
                while let Some(d) = ep.poll_outgoing() {
                    net.send(now, d);
                }
            }
            // Deliver anything ready now.
            let arrivals = net.pop_arrivals(now);
            if !arrivals.is_empty() {
                for d in arrivals {
                    // Exactly one endpoint owns any destination address, so
                    // hand the datagram over by value instead of cloning it
                    // for every candidate.
                    if let Some(ep) = eps.iter_mut().find(|ep| ep.local_addrs.contains(&d.dst)) {
                        ep.on_datagram(now, d);
                    }
                }
                continue;
            }
            // Advance to the next interesting instant.
            let mut next = net.next_arrival();
            for ep in eps.iter() {
                next = match (next, ep.next_wakeup()) {
                    (None, w) => w,
                    (t, None) => t,
                    (Some(a), Some(b)) => Some(a.min(b)),
                };
            }
            match next {
                Some(t) if t <= limit => {
                    now = t;
                    for ep in eps.iter_mut() {
                        ep.on_tick(now);
                    }
                }
                _ => return now,
            }
        }
    }

    fn drain_events(ep: &mut Endpoint) -> Vec<TransportEvent> {
        let mut out = vec![];
        while let Some(e) = ep.poll_event() {
            out.push(e);
        }
        out
    }

    #[test]
    fn small_message_delivers_and_acks() {
        let (mut a, mut b) = mk_pair(TransportConfig::default(), 1);
        let mut net = SimNet::new(SimNetConfig::default());
        let id = a
            .send(Time::ZERO, NodeId(1), Bytes::from_static(b"hello"))
            .unwrap();
        pump(
            &mut net,
            &mut [&mut a, &mut b],
            Time::ZERO,
            Time::ZERO + Duration::from_secs(1),
        );
        assert_eq!(
            drain_events(&mut a),
            vec![TransportEvent::Delivered {
                msg_id: id,
                to: NodeId(1)
            }]
        );
        assert_eq!(
            drain_events(&mut b),
            vec![TransportEvent::Received {
                from: NodeId(0),
                payload: Bytes::from_static(b"hello")
            }]
        );
        assert_eq!(a.in_flight(), 0);
        assert_eq!(b.stats().acks_sent, 1);
    }

    #[test]
    fn empty_payload_is_a_valid_message() {
        let (mut a, mut b) = mk_pair(TransportConfig::default(), 1);
        let mut net = SimNet::new(SimNetConfig::default());
        a.send(Time::ZERO, NodeId(1), Bytes::new()).unwrap();
        pump(
            &mut net,
            &mut [&mut a, &mut b],
            Time::ZERO,
            Time::ZERO + Duration::from_secs(1),
        );
        let ev = drain_events(&mut b);
        assert_eq!(
            ev,
            vec![TransportEvent::Received {
                from: NodeId(0),
                payload: Bytes::new()
            }]
        );
    }

    #[test]
    fn unreliable_send_delivers_without_completion_events() {
        let cfg = TransportConfig {
            mtu: 100,
            ..Default::default()
        };
        let (mut a, mut b) = mk_pair(cfg, 1);
        let mut net = SimNet::new(SimNetConfig::default());
        let payload: Vec<u8> = (0..350).map(|i| (i % 251) as u8).collect();
        a.send_unreliable(Time::ZERO, NodeId(1), Bytes::from(payload.clone()))
            .unwrap();
        pump(
            &mut net,
            &mut [&mut a, &mut b],
            Time::ZERO,
            Time::ZERO + Duration::from_secs(1),
        );
        // The receiver reassembles and delivers normally...
        let ev = drain_events(&mut b);
        assert_eq!(ev.len(), 1);
        match &ev[0] {
            TransportEvent::Received { payload: got, .. } => assert_eq!(&got[..], &payload[..]),
            other => panic!("unexpected {other:?}"),
        }
        // ...its acks fall on the floor harmlessly, and the sender keeps
        // no in-flight state and reports no completion either way.
        assert_eq!(drain_events(&mut a), vec![]);
        assert_eq!(a.in_flight(), 0);
        assert_eq!(a.stats().data_frames_sent, 4);
    }

    #[test]
    fn unreliable_send_loss_never_reports_delivery_failure() {
        let cfg = TransportConfig {
            retry_timeout: Duration::from_millis(10),
            max_retries: 3,
            ..Default::default()
        };
        let (mut a, mut b) = mk_pair(cfg, 1);
        let mut net = SimNet::new(SimNetConfig::default());
        net.set_node(NodeId(1), false); // peer unreachable: every frame lost
        a.send_unreliable(Time::ZERO, NodeId(1), Bytes::from_static(b"gone"))
            .unwrap();
        pump(
            &mut net,
            &mut [&mut a, &mut b],
            Time::ZERO,
            Time::ZERO + Duration::from_secs(10),
        );
        // Bulk loss is recovered end-to-end by the session's NACK pull; the
        // transport must not retry it or feed the failure detector.
        assert_eq!(drain_events(&mut a), vec![]);
        assert_eq!(drain_events(&mut b), vec![]);
        assert_eq!(a.stats().retransmissions, 0);
        assert_eq!(a.stats().msgs_failed, 0);
    }

    #[test]
    fn large_message_fragments_and_reassembles() {
        let cfg = TransportConfig {
            mtu: 100,
            ..Default::default()
        };
        let (mut a, mut b) = mk_pair(cfg, 1);
        let mut net = SimNet::new(SimNetConfig::default());
        let payload: Vec<u8> = (0..1000).map(|i| (i % 251) as u8).collect();
        a.send(Time::ZERO, NodeId(1), Bytes::from(payload.clone()))
            .unwrap();
        pump(
            &mut net,
            &mut [&mut a, &mut b],
            Time::ZERO,
            Time::ZERO + Duration::from_secs(1),
        );
        let ev = drain_events(&mut b);
        assert_eq!(ev.len(), 1);
        match &ev[0] {
            TransportEvent::Received { payload: got, .. } => assert_eq!(&got[..], &payload[..]),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(a.stats().data_frames_sent, 10);
        assert_eq!(b.stats().acks_sent, 10);
    }

    #[test]
    fn loss_triggers_retransmission_but_single_delivery() {
        let cfg = TransportConfig {
            retry_timeout: Duration::from_millis(10),
            max_retries: 20,
            ..Default::default()
        };
        let (mut a, mut b) = mk_pair(cfg, 1);
        let mut net = SimNet::new(SimNetConfig {
            loss: 0.4,
            seed: 11,
            ..Default::default()
        });
        a.send(Time::ZERO, NodeId(1), Bytes::from_static(b"lossy"))
            .unwrap();
        pump(
            &mut net,
            &mut [&mut a, &mut b],
            Time::ZERO,
            Time::ZERO + Duration::from_secs(10),
        );
        let got = drain_events(&mut b);
        assert_eq!(
            got.iter()
                .filter(|e| matches!(e, TransportEvent::Received { .. }))
                .count(),
            1,
            "exactly-once delivery despite loss"
        );
        assert_eq!(
            drain_events(&mut a),
            vec![TransportEvent::Delivered {
                msg_id: MsgId(0),
                to: NodeId(1)
            }]
        );
    }

    #[test]
    fn failure_on_delivery_after_retries_exhausted() {
        let cfg = TransportConfig {
            retry_timeout: Duration::from_millis(10),
            max_retries: 3,
            ..Default::default()
        };
        let (mut a, mut b) = mk_pair(cfg, 1);
        let mut net = SimNet::new(SimNetConfig::default());
        net.set_node(NodeId(1), false); // peer is dead
        let id = a
            .send(Time::ZERO, NodeId(1), Bytes::from_static(b"x"))
            .unwrap();
        let end = pump(
            &mut net,
            &mut [&mut a, &mut b],
            Time::ZERO,
            Time::ZERO + Duration::from_secs(5),
        );
        assert_eq!(
            drain_events(&mut a),
            vec![TransportEvent::DeliveryFailed {
                msg_id: id,
                to: NodeId(1)
            }]
        );
        // 3 transmissions, 10 ms apart → failure detected at ~30 ms: fast
        // local-view detection, as the aggressive protocol requires.
        assert!(
            end <= Time::ZERO + Duration::from_millis(50),
            "took {end:?}"
        );
        assert_eq!(a.stats().data_frames_sent, 3);
        assert_eq!(a.stats().msgs_failed, 1);
    }

    #[test]
    fn sequential_strategy_fails_over_to_second_address() {
        let cfg = TransportConfig {
            retry_timeout: Duration::from_millis(10),
            max_retries: 2,
            strategy: SendStrategy::Sequential,
            ..Default::default()
        };
        let (mut a, mut b) = mk_pair(cfg, 2);
        let mut net = SimNet::new(SimNetConfig::default());
        // Unplug the peer's first NIC: primary path dead, secondary alive.
        net.set_nic(Addr::new(NodeId(1), 0), false);
        let id = a
            .send(Time::ZERO, NodeId(1), Bytes::from_static(b"via-backup"))
            .unwrap();
        pump(
            &mut net,
            &mut [&mut a, &mut b],
            Time::ZERO,
            Time::ZERO + Duration::from_secs(5),
        );
        assert_eq!(
            drain_events(&mut a),
            vec![TransportEvent::Delivered {
                msg_id: id,
                to: NodeId(1)
            }]
        );
        let got = drain_events(&mut b);
        assert!(matches!(&got[..], [TransportEvent::Received { .. }]));
    }

    #[test]
    fn parallel_strategy_survives_first_link_without_waiting() {
        let cfg = TransportConfig {
            retry_timeout: Duration::from_millis(100),
            max_retries: 2,
            strategy: SendStrategy::Parallel,
            ..Default::default()
        };
        let (mut a, mut b) = mk_pair(cfg, 2);
        let mut net = SimNet::new(SimNetConfig::default());
        net.set_nic(Addr::new(NodeId(1), 0), false);
        a.send(Time::ZERO, NodeId(1), Bytes::from_static(b"x"))
            .unwrap();
        let end = pump(
            &mut net,
            &mut [&mut a, &mut b],
            Time::ZERO,
            Time::ZERO + Duration::from_secs(5),
        );
        // Delivered via NIC 1 on the first shot: well before one retry period.
        assert!(
            end < Time::ZERO + Duration::from_millis(100),
            "took {end:?}"
        );
        assert!(matches!(
            drain_events(&mut a)[..],
            [TransportEvent::Delivered { .. }]
        ));
    }

    #[test]
    fn both_addresses_dead_reports_failure() {
        let cfg = TransportConfig {
            retry_timeout: Duration::from_millis(5),
            max_retries: 2,
            strategy: SendStrategy::Sequential,
            ..Default::default()
        };
        let (mut a, mut b) = mk_pair(cfg, 2);
        let mut net = SimNet::new(SimNetConfig::default());
        net.set_node(NodeId(1), false);
        let id = a
            .send(Time::ZERO, NodeId(1), Bytes::from_static(b"x"))
            .unwrap();
        pump(
            &mut net,
            &mut [&mut a, &mut b],
            Time::ZERO,
            Time::ZERO + Duration::from_secs(5),
        );
        assert_eq!(
            drain_events(&mut a),
            vec![TransportEvent::DeliveryFailed {
                msg_id: id,
                to: NodeId(1)
            }]
        );
        // 2 attempts on addr 0 + 2 attempts on addr 1.
        assert_eq!(a.stats().data_frames_sent, 4);
    }

    #[test]
    fn unknown_peer_rejected_synchronously() {
        let (mut a, _b) = mk_pair(TransportConfig::default(), 1);
        assert_eq!(
            a.send(Time::ZERO, NodeId(9), Bytes::new()).unwrap_err(),
            Error::UnknownNode(NodeId(9))
        );
    }

    #[test]
    fn abort_cancels_without_event() {
        let (mut a, _b) = mk_pair(TransportConfig::default(), 1);
        let id = a
            .send(Time::ZERO, NodeId(1), Bytes::from_static(b"x"))
            .unwrap();
        assert!(a.abort(id));
        assert!(!a.abort(id));
        a.on_tick(Time::ZERO + Duration::from_secs(10));
        assert!(a.poll_event().is_none());
        assert_eq!(a.in_flight(), 0);
    }

    #[test]
    fn stale_incarnation_frames_are_ignored() {
        let peers = PeerTable::full_mesh([NodeId(0), NodeId(1)], 1);
        let mut b = Endpoint::new(
            NodeId(1),
            Incarnation::FIRST,
            vec![Addr::primary(NodeId(1))],
            peers.clone(),
            TransportConfig::default(),
        )
        .unwrap();
        // New life of node 0 speaks first…
        let mut a_new = Endpoint::new(
            NodeId(0),
            Incarnation(1),
            vec![Addr::primary(NodeId(0))],
            peers.clone(),
            TransportConfig::default(),
        )
        .unwrap();
        a_new
            .send(Time::ZERO, NodeId(1), Bytes::from_static(b"new"))
            .unwrap();
        let d = a_new.poll_outgoing().unwrap();
        b.on_datagram(Time::ZERO, d);
        assert_eq!(b.stats().msgs_received, 1);
        // …then a ghost frame from incarnation 0 arrives: dropped, no ack.
        let mut a_old = Endpoint::new(
            NodeId(0),
            Incarnation(0),
            vec![Addr::primary(NodeId(0))],
            peers,
            TransportConfig::default(),
        )
        .unwrap();
        a_old
            .send(Time::ZERO, NodeId(1), Bytes::from_static(b"old"))
            .unwrap();
        let d = a_old.poll_outgoing().unwrap();
        let acks_before = b.stats().acks_sent;
        b.on_datagram(Time::ZERO, d);
        assert_eq!(b.stats().msgs_received, 1, "ghost not delivered");
        assert_eq!(b.stats().acks_sent, acks_before, "ghost not acked");
        assert_eq!(b.stats().stale_dropped, 1);
    }

    #[test]
    fn duplicate_data_reacked_but_not_redelivered() {
        let (mut a, mut b) = mk_pair(TransportConfig::default(), 1);
        a.send(Time::ZERO, NodeId(1), Bytes::from_static(b"dup"))
            .unwrap();
        let d = a.poll_outgoing().unwrap();
        b.on_datagram(Time::ZERO, d.clone());
        b.on_datagram(Time::ZERO, d);
        assert_eq!(b.stats().msgs_received, 1);
        assert_eq!(b.stats().acks_sent, 2, "duplicate still acknowledged");
        assert_eq!(b.stats().duplicates_dropped, 1);
    }

    #[test]
    fn malformed_frames_dropped() {
        let (_, mut b) = mk_pair(TransportConfig::default(), 1);
        // Garbage payload.
        b.on_datagram(
            Time::ZERO,
            Datagram::control(
                Addr::primary(NodeId(0)),
                Addr::primary(NodeId(1)),
                Bytes::from_static(&[0xff, 1, 2]),
            ),
        );
        // frag_index >= frag_count.
        let bad = Frame::Data {
            from: NodeId(0),
            inc: Incarnation::FIRST,
            msg_id: MsgId(0),
            frag_index: 5,
            frag_count: 2,
            payload: Bytes::new(),
        };
        b.on_datagram(
            Time::ZERO,
            Datagram::control(
                Addr::primary(NodeId(0)),
                Addr::primary(NodeId(1)),
                bad.encode_to_bytes(),
            ),
        );
        assert_eq!(b.stats().msgs_received, 0);
        assert_eq!(b.stats().acks_sent, 0);
        assert!(b.poll_event().is_none());
    }

    #[test]
    fn next_wakeup_tracks_earliest_retry() {
        let cfg = TransportConfig {
            retry_timeout: Duration::from_millis(30),
            ..Default::default()
        };
        let (mut a, _b) = mk_pair(cfg, 1);
        assert_eq!(a.next_wakeup(), None);
        a.send(Time::ZERO, NodeId(1), Bytes::from_static(b"x"))
            .unwrap();
        assert_eq!(
            a.next_wakeup(),
            Some(Time::ZERO + Duration::from_millis(30))
        );
    }

    #[test]
    fn many_messages_preserve_per_message_atomicity() {
        let cfg = TransportConfig {
            mtu: 64,
            retry_timeout: Duration::from_millis(10),
            max_retries: 30,
            ..Default::default()
        };
        let (mut a, mut b) = mk_pair(cfg, 1);
        let mut net = SimNet::new(SimNetConfig {
            loss: 0.25,
            seed: 99,
            ..Default::default()
        });
        let mut sent = vec![];
        for i in 0..20u8 {
            let payload: Vec<u8> = std::iter::repeat_n(i, 150).collect();
            sent.push(payload.clone());
            a.send(Time::ZERO, NodeId(1), Bytes::from(payload)).unwrap();
        }
        pump(
            &mut net,
            &mut [&mut a, &mut b],
            Time::ZERO,
            Time::ZERO + Duration::from_secs(30),
        );
        let mut got: Vec<Vec<u8>> = drain_events(&mut b)
            .into_iter()
            .filter_map(|e| match e {
                TransportEvent::Received { payload, .. } => Some(payload.to_vec()),
                _ => None,
            })
            .collect();
        got.sort();
        let mut want = sent.clone();
        want.sort();
        assert_eq!(got, want, "all 20 messages delivered whole, exactly once");
    }
}

#[cfg(test)]
mod more_tests {
    //! Additional edge-case coverage: interleaved reassembly, parallel
    //! acknowledgement races, aborts mid-retry, and peer-table churn.

    use super::*;
    use raincore_net::{SimNet, SimNetConfig};
    use raincore_types::Duration;

    fn pair(cfg: TransportConfig) -> (Endpoint, Endpoint) {
        let peers = PeerTable::full_mesh([NodeId(0), NodeId(1)], 1);
        let mk = |id: u32| {
            Endpoint::new(
                NodeId(id),
                Incarnation::FIRST,
                vec![Addr::primary(NodeId(id))],
                peers.clone(),
                cfg.clone(),
            )
            .unwrap()
        };
        (mk(0), mk(1))
    }

    #[test]
    fn interleaved_fragments_of_two_messages_reassemble_independently() {
        let cfg = TransportConfig {
            mtu: 64,
            ..Default::default()
        };
        let (mut a, mut b) = pair(cfg);
        let p1: Vec<u8> = (0..=160).collect();
        let p2: Vec<u8> = (80..=240).collect();
        a.send(Time::ZERO, NodeId(1), Bytes::from(p1.clone()))
            .unwrap();
        a.send(Time::ZERO, NodeId(1), Bytes::from(p2.clone()))
            .unwrap();
        // Deliver all frames to b in a zig-zag order.
        let mut frames = vec![];
        while let Some(d) = a.poll_outgoing() {
            frames.push(d);
        }
        assert_eq!(frames.len(), 6, "3 fragments each");
        let order = [0usize, 3, 1, 4, 5, 2];
        for &i in &order {
            b.on_datagram(Time::ZERO, frames[i].clone());
        }
        let mut got = vec![];
        while let Some(TransportEvent::Received { payload, .. }) = b.poll_event() {
            got.push(payload.to_vec());
        }
        got.sort();
        let mut want = vec![p1, p2];
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn parallel_strategy_single_delivery_despite_duplicate_paths() {
        let cfg = TransportConfig {
            strategy: raincore_types::config::SendStrategy::Parallel,
            ..Default::default()
        };
        let peers = PeerTable::full_mesh([NodeId(0), NodeId(1)], 2);
        let mut a = Endpoint::new(
            NodeId(0),
            Incarnation::FIRST,
            vec![Addr::new(NodeId(0), 0), Addr::new(NodeId(0), 1)],
            peers.clone(),
            cfg.clone(),
        )
        .unwrap();
        let mut b = Endpoint::new(
            NodeId(1),
            Incarnation::FIRST,
            vec![Addr::new(NodeId(1), 0), Addr::new(NodeId(1), 1)],
            peers,
            cfg,
        )
        .unwrap();
        let mut net = SimNet::new(SimNetConfig::default());
        a.send(Time::ZERO, NodeId(1), Bytes::from_static(b"dup-path"))
            .unwrap();
        // Both copies arrive; exactly one delivery, both acked.
        while let Some(d) = a.poll_outgoing() {
            net.send(Time::ZERO, d);
        }
        for d in net.pop_arrivals(Time::ZERO + Duration::from_secs(1)) {
            if d.dst.node == NodeId(1) {
                b.on_datagram(Time::ZERO, d);
            }
        }
        let mut deliveries = 0;
        while let Some(ev) = b.poll_event() {
            if matches!(ev, TransportEvent::Received { .. }) {
                deliveries += 1;
            }
        }
        assert_eq!(deliveries, 1, "duplicate-path copies suppressed");
        assert_eq!(b.stats().duplicates_dropped, 1);
        assert_eq!(b.stats().acks_sent, 2, "both copies acknowledged");
    }

    #[test]
    fn abort_mid_retry_stops_retransmissions() {
        let cfg = TransportConfig {
            retry_timeout: Duration::from_millis(10),
            max_retries: 10,
            ..Default::default()
        };
        let (mut a, _b) = pair(cfg);
        let id = a
            .send(Time::ZERO, NodeId(1), Bytes::from_static(b"x"))
            .unwrap();
        while a.poll_outgoing().is_some() {}
        a.on_tick(Time::ZERO + Duration::from_millis(10));
        assert!(a.poll_outgoing().is_some(), "one retransmission happened");
        while a.poll_outgoing().is_some() {}
        assert!(a.abort(id));
        a.on_tick(Time::ZERO + Duration::from_millis(100));
        assert!(
            a.poll_outgoing().is_none(),
            "no retransmissions after abort"
        );
        assert_eq!(a.next_wakeup(), None);
    }

    #[test]
    fn peer_removed_mid_send_fails_on_next_retry() {
        let cfg = TransportConfig {
            retry_timeout: Duration::from_millis(10),
            max_retries: 5,
            ..Default::default()
        };
        let (mut a, _b) = pair(cfg);
        let id = a
            .send(Time::ZERO, NodeId(1), Bytes::from_static(b"x"))
            .unwrap();
        a.peers_mut().remove(NodeId(1));
        a.on_tick(Time::ZERO + Duration::from_millis(10));
        let mut failed = false;
        while let Some(ev) = a.poll_event() {
            if let TransportEvent::DeliveryFailed { msg_id, to } = ev {
                assert_eq!(msg_id, id);
                assert_eq!(to, NodeId(1));
                failed = true;
            }
        }
        assert!(failed, "vanished peer reported as failure-on-delivery");
    }

    #[test]
    fn ack_for_unknown_fragment_index_ignored() {
        let (mut a, _b) = pair(TransportConfig::default());
        a.send(Time::ZERO, NodeId(1), Bytes::from_static(b"x"))
            .unwrap();
        // Forge an ack with an out-of-range fragment index.
        let bogus = Frame::Ack {
            from: NodeId(1),
            inc: Incarnation::FIRST,
            msg_id: MsgId(0),
            frag_index: 99,
        };
        a.on_datagram(
            Time::ZERO,
            raincore_net::Datagram::control(
                Addr::primary(NodeId(1)),
                Addr::primary(NodeId(0)),
                raincore_types::wire::WireEncode::encode_to_bytes(&bogus),
            ),
        );
        assert_eq!(a.in_flight(), 1, "message still pending");
        assert!(a.poll_event().is_none());
    }

    #[test]
    fn zero_byte_fragmented_boundary() {
        // Payload exactly at the MTU boundary: one fragment, not two.
        let cfg = TransportConfig {
            mtu: 100,
            ..Default::default()
        };
        let (mut a, _b) = pair(cfg);
        a.send(Time::ZERO, NodeId(1), Bytes::from(vec![7u8; 100]))
            .unwrap();
        let mut frames = 0;
        while a.poll_outgoing().is_some() {
            frames += 1;
        }
        assert_eq!(frames, 1);
    }
}
