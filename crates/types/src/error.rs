//! Unified error type for the Raincore crates.

use crate::id::NodeId;
use crate::wire::WireError;
use core::fmt;

/// Result alias used across the Raincore crates.
pub type Result<T> = core::result::Result<T, Error>;

/// Errors surfaced by the Raincore stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A datagram failed to decode.
    Wire(WireError),
    /// The requested operation requires membership in a group, but the
    /// local node is not currently a member (e.g. it has been excluded and
    /// has not yet rejoined via the 911 protocol).
    NotMember,
    /// An operation referenced a node unknown to the local configuration.
    UnknownNode(NodeId),
    /// The local node has shut itself down (critical resource lost, or an
    /// explicit `leave`), so no further protocol operations are accepted.
    ShutDown,
    /// A message exceeded the configured maximum payload size.
    PayloadTooLarge {
        /// Size of the offending payload in bytes.
        size: usize,
        /// Configured maximum in bytes.
        max: usize,
    },
    /// A lock operation was invalid in the current lock state (e.g.
    /// releasing a lock the caller does not hold).
    InvalidLockOp(&'static str),
    /// The underlying OS socket failed (real UDP runtime only).
    Io(String),
    /// A configuration value was rejected.
    Config(&'static str),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Wire(e) => write!(f, "wire codec error: {e}"),
            Error::NotMember => write!(f, "local node is not a group member"),
            Error::UnknownNode(n) => write!(f, "unknown node {n}"),
            Error::ShutDown => write!(f, "node has shut down"),
            Error::PayloadTooLarge { size, max } => {
                write!(f, "payload of {size} bytes exceeds maximum {max}")
            }
            Error::InvalidLockOp(why) => write!(f, "invalid lock operation: {why}"),
            Error::Io(e) => write!(f, "io error: {e}"),
            Error::Config(why) => write!(f, "invalid configuration: {why}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<WireError> for Error {
    fn from(e: WireError) -> Self {
        Error::Wire(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::PayloadTooLarge { size: 10, max: 5 };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains('5'));
        assert!(Error::NotMember.to_string().contains("not a group member"));
        assert!(Error::UnknownNode(NodeId(3)).to_string().contains("n3"));
    }

    #[test]
    fn wire_error_converts() {
        let e: Error = WireError::Truncated.into();
        assert_eq!(e, Error::Wire(WireError::Truncated));
    }
}
