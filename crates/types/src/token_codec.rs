//! Encode-once, patch-per-hop token wire codec.
//!
//! The token is the hottest message in the system: it crosses the wire
//! `L·N` times per second regardless of load (§4.1). Its wire image splits
//! naturally into a tiny mutable *header* — the `SessionMsg` tag and the
//! per-hop `seq` varint — and a *body* (ring, tbm flag, piggybacked
//! messages) that only changes when membership changes or messages ride
//! the token. [`TokenEncoder`] exploits that split: it keeps the encoded
//! body of the last quiescent token and, while the body stays equal,
//! re-encodes only the header on each hop and splices the cached bytes in
//! after it. The scratch buffer is pooled across encodes, so a
//! steady-state hop costs exactly one allocation — the immutable output
//! buffer handed to the transport.
//!
//! Output is byte-identical to `SessionMsg::Token(t).encode_to_bytes()`
//! by construction (the header is written with the same primitives, the
//! body bytes are the same bytes); `crates/types/tests/wire_fuzz.rs`
//! property-tests the equivalence across seeded token mutations.
//!
//! Cache validity is decided by **value** equality of the ring and tbm
//! flag, never by `Arc` pointer identity: the CoW containers
//! ([`Ring`], [`crate::messages::MsgList`]) mutate in place when uniquely
//! owned, so an address comparison could vouch for a stale body. The
//! ring comparison is a cheap `O(N)` id scan and only runs for quiescent
//! tokens (no messages aboard) — exactly the steady-state regime the
//! paper's overhead argument is about.

use crate::membership::Ring;
use crate::messages::{SessionMsg, Token};
use crate::wire::{WireEncode, Writer};
use bytes::Bytes;

/// Body bytes of the last quiescent token, with the values they encode.
#[derive(Debug)]
struct CachedBody {
    /// Ring the cached bytes encode (a CoW handle; compared by value).
    ring: Ring,
    /// TBM flag the cached bytes encode.
    tbm: bool,
    /// Encoded `ring | tbm | msgs(empty)` image.
    bytes: Bytes,
}

/// Reusable encoder for `SessionMsg::Token` wire images.
///
/// One encoder lives inside each session node; it owns a pooled scratch
/// buffer and the cached body. See the module docs for the design.
#[derive(Debug, Default)]
pub struct TokenEncoder {
    scratch: Writer,
    cached: Option<CachedBody>,
    hits: u64,
    misses: u64,
}

impl TokenEncoder {
    /// Creates an encoder with an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encodes the full `SessionMsg::Token` wire image of `token`,
    /// reusing the cached body when it is still valid.
    pub fn encode(&mut self, token: &Token) -> Bytes {
        self.scratch.clear();
        self.scratch.put_u8(SessionMsg::TAG_TOKEN);
        self.scratch.put_varint(token.seq);
        // The trace context (circ/hop/parent) changes every hop, exactly
        // like `seq` — it belongs to the patched header, not the cached
        // body: three more varints in the pooled scratch, zero extra
        // allocations.
        token.trace.encode(&mut self.scratch);
        match &self.cached {
            Some(c) if token.msgs.is_empty() && c.tbm == token.tbm && c.ring == token.ring => {
                self.hits += 1;
                self.scratch.put_raw(&c.bytes);
            }
            _ => {
                self.misses += 1;
                let body_start = self.scratch.len();
                token.encode_body(&mut self.scratch);
                if token.msgs.is_empty() {
                    self.cached = Some(CachedBody {
                        ring: token.ring.clone(),
                        tbm: token.tbm,
                        bytes: Bytes::copy_from_slice(&self.scratch.as_slice()[body_start..]),
                    });
                }
                // A message-carrying body is not cached (it changes every
                // hop), but the previous quiescent body is kept: it
                // becomes valid again the moment the messages retire.
            }
        }
        self.scratch.snapshot()
    }

    /// Hops served from the cached body.
    pub fn cache_hits(&self) -> u64 {
        self.hits
    }

    /// Hops that re-encoded the body (membership change, tbm change, or
    /// messages aboard).
    pub fn cache_misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::{NodeId, OriginSeq};
    use crate::messages::{Attached, DeliveryMode};
    use crate::wire::WireEncode;

    fn full(t: &Token) -> Bytes {
        SessionMsg::Token(t.clone()).encode_to_bytes()
    }

    #[test]
    fn quiescent_hops_hit_the_cache_and_match_full_encode() {
        let mut enc = TokenEncoder::new();
        let mut t = Token::founding(Ring::from([1, 2, 3]));
        for hop in 0..10 {
            t.seq += 1;
            t.trace.hop += 1;
            assert_eq!(enc.encode(&t)[..], full(&t)[..], "hop {hop}");
        }
        assert_eq!(enc.cache_misses(), 1);
        assert_eq!(enc.cache_hits(), 9);
    }

    #[test]
    fn trace_ctx_rides_the_patched_header_without_body_invalidation() {
        use crate::messages::TraceCtx;
        let mut enc = TokenEncoder::new();
        let mut t = Token::founding(Ring::from([1, 2, 3]));
        assert_eq!(enc.encode(&t)[..], full(&t)[..]);
        // A regeneration mints a fresh circulation: every header field
        // changes, the body does not — the cache must keep serving.
        t.seq += 2;
        t.trace = TraceCtx::mint(NodeId(2), t.seq, t.trace.hop);
        assert_eq!(enc.encode(&t)[..], full(&t)[..]);
        t.seq += 1;
        t.trace.hop += 1;
        assert_eq!(enc.encode(&t)[..], full(&t)[..]);
        assert_eq!(enc.cache_misses(), 1);
        assert_eq!(enc.cache_hits(), 2);
    }

    #[test]
    fn membership_change_invalidates_by_value() {
        let mut enc = TokenEncoder::new();
        let mut t = Token::founding(Ring::from([1, 2]));
        assert_eq!(enc.encode(&t)[..], full(&t)[..]);
        // The encoder's cached ring shares storage with the token's; the
        // push below unshares in place. A pointer-identity cache would
        // serve stale bytes here — value comparison must not.
        t.ring.push(NodeId(3));
        t.seq += 1;
        assert_eq!(enc.encode(&t)[..], full(&t)[..]);
        assert_eq!(enc.cache_misses(), 2);
        // The new body is cached in turn.
        t.seq += 1;
        assert_eq!(enc.encode(&t)[..], full(&t)[..]);
        assert_eq!(enc.cache_hits(), 1);
    }

    #[test]
    fn tbm_flip_and_messages_bypass_the_cache() {
        let mut enc = TokenEncoder::new();
        let mut t = Token::founding(Ring::from([1, 2]));
        assert_eq!(enc.encode(&t)[..], full(&t)[..]);
        t.tbm = true;
        assert_eq!(enc.encode(&t)[..], full(&t)[..]);
        t.tbm = false;
        t.msgs.push(Attached::new(
            NodeId(1),
            OriginSeq(0),
            DeliveryMode::Agreed,
            Bytes::from_static(b"payload"),
        ));
        assert_eq!(enc.encode(&t)[..], full(&t)[..]);
        assert_eq!(enc.cache_hits(), 0);
        assert_eq!(enc.cache_misses(), 3);
        // Messages retire: the cached body (tbm=true vintage) no longer
        // matches, so one more miss re-primes the cache and subsequent
        // quiescent hops hit again.
        t.msgs = Default::default();
        assert_eq!(enc.encode(&t)[..], full(&t)[..]);
        t.seq += 1;
        assert_eq!(enc.encode(&t)[..], full(&t)[..]);
        assert_eq!(enc.cache_hits(), 1);
    }

    #[test]
    fn manifest_entries_stay_byte_identical_to_full_encode() {
        let mut enc = TokenEncoder::new();
        let mut t = Token::founding(Ring::from([1, 2, 3]));
        assert_eq!(enc.encode(&t)[..], full(&t)[..]);
        // An id-manifest entry rides the token: the patched-header path
        // must stay byte-identical to the full encode, hop after hop, as
        // the watermark (seen set) mutates in place.
        t.msgs.push(Attached::new_oob(
            NodeId(2),
            OriginSeq(4),
            DeliveryMode::Agreed,
            4096,
        ));
        for hop in 0..4 {
            t.seq += 1;
            t.trace.hop += 1;
            for m in t.msgs.iter_mut() {
                m.mark_seen(NodeId(1 + hop % 3));
            }
            assert_eq!(enc.encode(&t)[..], full(&t)[..], "manifest hop {hop}");
        }
        // A mixed token (inline + manifest) is equally faithful.
        t.msgs.push(Attached::new(
            NodeId(3),
            OriginSeq(9),
            DeliveryMode::Safe,
            Bytes::from_static(b"inline"),
        ));
        t.seq += 1;
        assert_eq!(enc.encode(&t)[..], full(&t)[..]);
    }

    #[test]
    fn manifest_retirement_restores_the_quiescent_cache() {
        use crate::messages::Attached;
        let mut enc = TokenEncoder::new();
        let mut t = Token::founding(Ring::from([1, 2]));
        assert_eq!(enc.encode(&t)[..], full(&t)[..]); // miss: primes cache
        t.seq += 1;
        assert_eq!(enc.encode(&t)[..], full(&t)[..]); // hit
                                                      // A manifest aboard bypasses the cache like any message...
        t.msgs.push(Attached::new_oob(
            NodeId(1),
            OriginSeq(0),
            DeliveryMode::Agreed,
            1024,
        ));
        t.seq += 1;
        assert_eq!(enc.encode(&t)[..], full(&t)[..]); // miss
                                                      // ...and once it retires the old quiescent body serves again
                                                      // without re-encoding: the 6-alloc steady-state floor is intact.
        t.msgs.retain(|_| false);
        t.seq += 1;
        assert_eq!(enc.encode(&t)[..], full(&t)[..]); // hit
        assert_eq!(enc.cache_misses(), 2);
        assert_eq!(enc.cache_hits(), 2);
    }
}
