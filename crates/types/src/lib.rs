//! Common vocabulary types for the Raincore distributed session service.
//!
//! This crate defines the identifiers, virtual time representation, wire
//! codec, protocol message formats, ring-membership container and
//! configuration shared by every other Raincore crate. It has no knowledge
//! of any particular network substrate or protocol engine; it is pure data.
//!
//! The layout mirrors the paper's vocabulary (Fan & Bruck, *The Raincore
//! Distributed Session Service for Networking Elements*, IPPS 2001):
//!
//! * [`NodeId`] / [`GroupId`] — member and sub-group identity (§2.4 uses the
//!   lowest member id as the group id).
//! * [`Token`] — the unique circulating token carrying the authoritative
//!   membership, per-hop sequence number and piggybacked multicast messages
//!   (§2.2).
//! * [`SessionMsg`] — every session-layer datagram: `TOKEN`, `911`
//!   request/verdict, and `BODYODOR` discovery beacons (§2.3–2.4).
//! * [`Ring`] — the ordered logical ring of the group membership.
//! * [`wire`] — a compact, `unsafe`-free, length-checked binary codec used
//!   for every message that crosses the (simulated or real) network.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod digest;
pub mod error;
pub mod id;
pub mod membership;
pub mod messages;
pub mod time;
pub mod token_codec;
pub mod wire;

pub use config::{SessionConfig, TransportConfig};
pub use digest::{DigestInto, Fingerprint, StateDigest};
pub use error::{Error, Result};
pub use id::{GroupId, Incarnation, MsgId, NodeId, OriginSeq, VipId};
pub use membership::Ring;
pub use messages::{
    Attached, AttachedBody, BodyOdor, BulkData, BulkNack, Call911, DeliveryMode, MsgList,
    OpenSubmit, Reply911, SessionMsg, Token, TraceCtx, Verdict911,
};
pub use time::{Duration, Time};
pub use token_codec::TokenEncoder;
