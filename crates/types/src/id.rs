//! Identifier newtypes used throughout Raincore.
//!
//! Every identifier is a small, `Copy`, totally ordered integer newtype.
//! Total order matters: the paper's merge protocol (§2.4) breaks ties by
//! comparing group ids, and a group's id is defined as the lowest
//! [`NodeId`] among its members.

use core::fmt;

/// Identity of a cluster member node.
///
/// Node ids are assigned by configuration (they correspond to the paper's
/// "node ID" carried in `BODYODOR` beacons and the token membership). They
/// are dense small integers in the simulator, but nothing relies on
/// density — only on uniqueness and total order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the raw integer value.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Identity of a (sub-)group.
///
/// Following §2.4 of the paper, "it is common to use the lowest node ID in
/// the current Group Membership as the group ID" — Raincore does exactly
/// that, so a `GroupId` is a wrapped [`NodeId`]. The merge protocol treats
/// a `BODYODOR` beacon as a join request if and only if the sender's group
/// id is *lower* than the receiver's, which is what makes multi-way merges
/// deadlock-free.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GroupId(pub NodeId);

impl GroupId {
    /// The node id this group id is derived from (its lowest member).
    #[inline]
    pub const fn lowest_member(self) -> NodeId {
        self.0
    }
}

impl fmt::Debug for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0 .0)
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0 .0)
    }
}

/// Incarnation number of a node.
///
/// Incremented every time a node (re)starts. It distinguishes a rejoining
/// node from a stale ghost of its previous life: transport-level frames and
/// membership entries carry the incarnation so that packets from a node's
/// previous incarnation are discarded after it crashes and rejoins.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Incarnation(pub u32);

impl Incarnation {
    /// The first incarnation of a freshly configured node.
    pub const FIRST: Incarnation = Incarnation(0);

    /// Returns the next incarnation (used when a node restarts).
    #[inline]
    pub const fn next(self) -> Incarnation {
        Incarnation(self.0 + 1)
    }
}

impl fmt::Debug for Incarnation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// Transport-level message identifier, unique per (sender, incarnation).
///
/// The Raincore Transport Service (§2.1) is an *atomic* acknowledged
/// unicast: each logical message gets a fresh `MsgId`; acknowledgements
/// echo it and receivers use it for duplicate suppression.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MsgId(pub u64);

impl fmt::Debug for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Per-origin multicast sequence number.
///
/// Each node numbers the multicast messages it originates; the pair
/// `(origin, OriginSeq)` uniquely identifies a multicast message and is the
/// key used for duplicate suppression during token-loss recovery.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OriginSeq(pub u64);

impl OriginSeq {
    /// Returns the next sequence number.
    #[inline]
    pub const fn next(self) -> OriginSeq {
        OriginSeq(self.0 + 1)
    }
}

impl fmt::Debug for OriginSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Identity of a virtual IP address managed by the Virtual IP manager (§3.1).
///
/// Virtual IPs are the publicly advertised addresses of the cluster; the
/// VIP manager assigns them mutually exclusively to healthy members and
/// moves them (with a gratuitous ARP) when a member fails.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VipId(pub u32);

impl fmt::Debug for VipId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vip{}", self.0)
    }
}

impl fmt::Display for VipId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vip{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_ordering_matches_raw() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId(7).raw(), 7);
        assert_eq!(NodeId::from(3), NodeId(3));
    }

    #[test]
    fn group_id_orders_by_lowest_member() {
        let a = GroupId(NodeId(0));
        let b = GroupId(NodeId(5));
        assert!(a < b);
        assert_eq!(b.lowest_member(), NodeId(5));
    }

    #[test]
    fn incarnation_next_increments() {
        assert_eq!(Incarnation::FIRST.next(), Incarnation(1));
        assert_eq!(Incarnation(41).next(), Incarnation(42));
    }

    #[test]
    fn origin_seq_next_increments() {
        assert_eq!(OriginSeq::default().next(), OriginSeq(1));
    }

    #[test]
    fn debug_formats_are_compact() {
        assert_eq!(format!("{:?}", NodeId(3)), "n3");
        assert_eq!(format!("{:?}", GroupId(NodeId(3))), "g3");
        assert_eq!(format!("{:?}", MsgId(9)), "m9");
        assert_eq!(format!("{:?}", OriginSeq(2)), "s2");
        assert_eq!(format!("{}", VipId(1)), "vip1");
    }
}
