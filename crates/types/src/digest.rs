//! Canonical state fingerprints for the bounded model checker.
//!
//! The model checker prunes states it has already explored. Two worlds
//! that differ only by a permutation of node ids behave identically up to
//! renaming (nodes are interchangeable: same config, same code), so the
//! checker hashes a *canonicalized* snapshot: every id-bearing field is
//! passed through a raw→canonical id map before being fed to the hasher.
//! With the identity map this degrades to plain state hashing.
//!
//! Soundness of merging two worlds under a candidate bijection does not
//! require the map itself to be "right": every derived id-bearing value
//! (group ids, ring orders, vote sets, dedup windows keyed by peer) is
//! digested *through the map*, so a candidate map that does not actually
//! put the two worlds in correspondence produces different digests and no
//! merge happens. The one deliberate gap is positional state that is not
//! id-valued (the join-probe cursor into `config.eligible`), which is
//! digested as a plain number; see DESIGN.md §12 for why this is safe at
//! model-checking depths and how it is cross-checked.
//!
//! The fingerprint is 128 bits (two independently salted [`DefaultHasher`]
//! streams) so that accidental collisions at millions of states are
//! negligible, and the whole pipeline is allocation-free: digesting writes
//! straight into the two hashers, no intermediate buffers.

use crate::id::{GroupId, Incarnation, MsgId, NodeId, OriginSeq};
use crate::membership::Ring;
use crate::messages::{Attached, AttachedBody, DeliveryMode, SessionMsg, Token, Verdict911};
use crate::time::Time;
use std::collections::hash_map::DefaultHasher;
use std::hash::Hasher;

/// A 128-bit fingerprint of a canonicalized state snapshot.
pub type Fingerprint = (u64, u64);

/// Incremental canonicalizing hasher.
///
/// All id-bearing writes go through [`StateDigest::node`] so the raw ids
/// are replaced by their canonical slots; everything else uses the plain
/// `write_*` primitives. Times should be digested relative to the current
/// virtual time ([`StateDigest::time_rel`]) so that two states reached at
/// different absolute times still merge.
pub struct StateDigest {
    a: DefaultHasher,
    b: DefaultHasher,
    /// `map[raw_id] = canonical_slot`; `None` means the identity map.
    map: Option<Vec<u32>>,
}

impl StateDigest {
    /// A digest under the identity id map (plain state hashing).
    pub fn identity() -> Self {
        Self::build(None)
    }

    /// A digest under an explicit raw→canonical id map. Ids beyond the
    /// map's length pass through unchanged.
    pub fn with_map(map: Vec<u32>) -> Self {
        // An identity vector is the identity map; normalizing here lets
        // callers use `is_identity` to pick cheap raw-byte digest paths.
        if map.iter().enumerate().all(|(i, &c)| i as u32 == c) {
            Self::build(None)
        } else {
            Self::build(Some(map))
        }
    }

    fn build(map: Option<Vec<u32>>) -> Self {
        let mut a = DefaultHasher::new();
        let mut b = DefaultHasher::new();
        // Distinct salts make the two 64-bit streams independent.
        a.write_u64(0x5261_696e_636f_7265); // "Raincore"
        b.write_u64(0x6469_6765_7374_3262); // "digest2b"
        StateDigest { a, b, map }
    }

    /// True when the id map is the identity. Callers may then digest raw
    /// encoded bytes directly instead of structurally decoding them.
    pub fn is_identity(&self) -> bool {
        self.map.is_none()
    }

    fn canon(&self, raw: u32) -> u32 {
        match &self.map {
            Some(m) => m.get(raw as usize).copied().unwrap_or(raw),
            None => raw,
        }
    }

    /// Maps `a` and `b` and compares their canonical slots. Used to sort
    /// map entries into canonical order without allocating mapped copies.
    pub fn canon_cmp(&self, a: NodeId, b: NodeId) -> std::cmp::Ordering {
        self.canon(a.0).cmp(&self.canon(b.0))
    }

    /// Digests a raw `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.a.write_u64(v);
        self.b.write_u64(v);
    }

    /// Digests a raw `u32`.
    pub fn write_u32(&mut self, v: u32) {
        self.a.write_u32(v);
        self.b.write_u32(v);
    }

    /// Digests a raw byte.
    pub fn write_u8(&mut self, v: u8) {
        self.a.write_u8(v);
        self.b.write_u8(v);
    }

    /// Digests a boolean.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(v as u8);
    }

    /// Digests a length (collection sizes, counts).
    pub fn write_len(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Digests a byte slice, length-prefixed so adjacent slices cannot
    /// alias each other.
    pub fn write_bytes(&mut self, v: &[u8]) {
        self.write_len(v.len());
        self.a.write(v);
        self.b.write(v);
    }

    /// Digests a variant/type tag. Callers tag every sum type so that
    /// differently-shaped values can never collide structurally.
    pub fn tag(&mut self, t: u8) {
        self.write_u8(t);
    }

    /// The canonical slot of a raw node id (identity if unmapped). Lets
    /// callers canonicalize id-bearing values that live *outside* the
    /// digest, e.g. the model checker's sleep-set actions.
    pub fn canon_node(&self, n: NodeId) -> NodeId {
        NodeId(self.canon(n.0))
    }

    /// Digests a node id through the canonical map.
    pub fn node(&mut self, n: NodeId) {
        self.write_u32(self.canon(n.0));
    }

    /// Digests an optional node id.
    pub fn opt_node(&mut self, n: Option<NodeId>) {
        match n {
            None => self.tag(0),
            Some(n) => {
                self.tag(1);
                self.node(n);
            }
        }
    }

    /// Digests an absolute time relative to `now`. Deadlines and
    /// timestamps only matter through their distance from the current
    /// virtual time; digesting the offset lets states reached at
    /// different absolute times merge.
    pub fn time_rel(&mut self, t: Time, now: Time) {
        self.write_u64(t.0.wrapping_sub(now.0));
    }

    /// Finalizes both streams into the 128-bit fingerprint.
    pub fn finish(self) -> Fingerprint {
        (self.a.finish(), self.b.finish())
    }
}

/// Types that can feed a canonicalized snapshot of themselves into a
/// [`StateDigest`].
pub trait DigestInto {
    /// Digests `self`, mapping every embedded node id canonically.
    fn digest_into(&self, d: &mut StateDigest);
}

impl DigestInto for NodeId {
    fn digest_into(&self, d: &mut StateDigest) {
        d.node(*self);
    }
}

impl DigestInto for GroupId {
    fn digest_into(&self, d: &mut StateDigest) {
        d.node(self.0);
    }
}

impl DigestInto for Incarnation {
    fn digest_into(&self, d: &mut StateDigest) {
        d.write_u32(self.0);
    }
}

impl DigestInto for MsgId {
    fn digest_into(&self, d: &mut StateDigest) {
        d.write_u64(self.0);
    }
}

impl DigestInto for OriginSeq {
    fn digest_into(&self, d: &mut StateDigest) {
        d.write_u64(self.0);
    }
}

impl DigestInto for Ring {
    /// Rings digest as *ordered sequences* of mapped ids. Order is
    /// semantically meaningful (it is the token's travel order), and
    /// digesting the order also protects canonical-map soundness: a
    /// candidate bijection that does not preserve ring correspondence
    /// yields different digests.
    fn digest_into(&self, d: &mut StateDigest) {
        d.write_len(self.len());
        for m in self.iter() {
            d.node(m);
        }
    }
}

impl DigestInto for Attached {
    fn digest_into(&self, d: &mut StateDigest) {
        d.node(self.origin);
        self.seq.digest_into(d);
        d.tag(match self.mode {
            DeliveryMode::Agreed => 0,
            DeliveryMode::Safe => 1,
        });
        d.write_len(self.seen.len());
        for n in &self.seen {
            d.node(*n);
        }
        d.write_len(self.confirmed.len());
        for n in &self.confirmed {
            d.node(*n);
        }
        match &self.body {
            AttachedBody::Inline(payload) => {
                d.tag(0);
                d.write_bytes(payload);
            }
            AttachedBody::Oob { len } => {
                d.tag(1);
                d.write_u64(*len);
            }
        }
    }
}

impl DigestInto for Token {
    /// The trace context is deliberately skipped: it is protocol-inert
    /// observability metadata and never influences a transition.
    fn digest_into(&self, d: &mut StateDigest) {
        d.write_u64(self.seq);
        d.write_bool(self.tbm);
        self.ring.digest_into(d);
        d.write_len(self.msgs.len());
        for m in self.msgs.iter() {
            m.digest_into(d);
        }
    }
}

impl DigestInto for Verdict911 {
    fn digest_into(&self, d: &mut StateDigest) {
        match self {
            Verdict911::Grant => d.tag(0),
            Verdict911::Deny { newer_seq } => {
                d.tag(1);
                d.write_u64(*newer_seq);
            }
        }
    }
}

impl DigestInto for SessionMsg {
    fn digest_into(&self, d: &mut StateDigest) {
        match self {
            SessionMsg::Token(t) => {
                d.tag(0);
                t.digest_into(d);
            }
            SessionMsg::Call911(c) => {
                d.tag(1);
                d.node(c.from);
                d.write_u64(c.last_token_seq);
                d.write_u64(c.req_id);
            }
            SessionMsg::Reply911(r) => {
                d.tag(2);
                d.node(r.from);
                d.write_u64(r.req_id);
                r.verdict.digest_into(d);
            }
            SessionMsg::BodyOdor(b) => {
                d.tag(3);
                d.node(b.from);
                b.group.digest_into(d);
            }
            SessionMsg::Open(o) => {
                d.tag(4);
                d.node(o.from);
                o.seq.digest_into(d);
                d.write_bytes(&o.payload);
            }
            SessionMsg::Bulk(b) => {
                d.tag(5);
                d.node(b.origin);
                b.seq.digest_into(d);
                d.write_bytes(&b.payload);
            }
            SessionMsg::BulkNack(n) => {
                d.tag(6);
                d.node(n.from);
                d.node(n.origin);
                n.seq.digest_into(d);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn fp<F: Fn(&mut StateDigest)>(map: Option<Vec<u32>>, f: F) -> Fingerprint {
        let mut d = match map {
            None => StateDigest::identity(),
            Some(m) => StateDigest::with_map(m),
        };
        f(&mut d);
        d.finish()
    }

    #[test]
    fn identity_map_is_transparent() {
        let a = fp(None, |d| Ring::from([0, 1, 2]).digest_into(d));
        let b = fp(Some(vec![0, 1, 2]), |d| {
            Ring::from([0, 1, 2]).digest_into(d)
        });
        assert_eq!(a, b, "identity vector normalizes to the identity map");
        let d = StateDigest::with_map(vec![0, 1, 2]);
        assert!(d.is_identity());
    }

    #[test]
    fn permuted_rings_merge_under_the_right_map() {
        // Ring [0,2,1] under map 0→0,1→2,2→1 is ring [0,1,2] raw.
        let a = fp(Some(vec![0, 2, 1]), |d| {
            Ring::from([0, 2, 1]).digest_into(d)
        });
        let b = fp(None, |d| Ring::from([0, 1, 2]).digest_into(d));
        assert_eq!(a, b);
    }

    #[test]
    fn ring_order_is_significant() {
        let a = fp(None, |d| Ring::from([0, 1, 2]).digest_into(d));
        let b = fp(None, |d| Ring::from([0, 2, 1]).digest_into(d));
        assert_ne!(a, b, "same members, different travel order");
    }

    #[test]
    fn wrong_map_does_not_merge() {
        // Swapping 1↔2 without the state actually being symmetric under
        // that swap must change the digest.
        let a = fp(Some(vec![0, 2, 1]), |d| {
            Ring::from([0, 1, 2]).digest_into(d)
        });
        let b = fp(None, |d| Ring::from([0, 1, 2]).digest_into(d));
        assert_ne!(a, b);
    }

    #[test]
    fn time_rel_makes_absolute_time_invisible() {
        let now1 = Time(100);
        let now2 = Time(7777);
        let a = fp(None, |d| d.time_rel(Time(105), now1));
        let b = fp(None, |d| d.time_rel(Time(7782), now2));
        assert_eq!(a, b, "same offset, different absolute time");
    }

    #[test]
    fn token_digest_covers_messages() {
        let mut t1 = Token::founding(Ring::from([0, 1]));
        let t2 = t1.clone();
        t1.msgs.push(Attached::new(
            NodeId(0),
            OriginSeq(0),
            DeliveryMode::Agreed,
            Bytes::from_static(b"x"),
        ));
        let a = fp(None, |d| t1.digest_into(d));
        let b = fp(None, |d| t2.digest_into(d));
        assert_ne!(a, b);
    }

    #[test]
    fn raw_bytes_vs_structural_tagging_do_not_collide_trivially() {
        // Not a deep guarantee, just a guard that the two entry points
        // stay distinguishable for a typical payload.
        let msg = SessionMsg::Call911(crate::messages::Call911 {
            from: NodeId(1),
            last_token_seq: 3,
            req_id: 9,
        });
        let a = fp(None, |d| msg.digest_into(d));
        let b = fp(None, |d| {
            use crate::wire::WireEncode;
            d.write_bytes(&msg.encode_to_bytes())
        });
        assert_ne!(a, b);
    }
}
