//! Session-layer message formats.
//!
//! Four datagrams cross the wire at the session layer (§2.2–2.4 of the
//! paper):
//!
//! * [`Token`] — the unique circulating TOKEN. It carries the
//!   authoritative membership [`Ring`], a sequence number incremented on
//!   every hop, the TBM ("to be merged") flag used by the merge protocol,
//!   and the piggybacked multicast messages ([`Attached`]).
//! * [`Call911`] — the 911 request: both a token-regeneration request
//!   (stamped with the caller's last local token sequence number) and,
//!   when the caller is not in the receiver's membership, a join request.
//! * [`Reply911`] — grant or denial of a 911 regeneration request.
//! * [`BodyOdor`] — the periodic discovery beacon sent to eligible
//!   non-members, carrying the sender's node id and current group id.

use crate::id::{GroupId, NodeId, OriginSeq};
use crate::membership::Ring;
use crate::wire::{Reader, WireDecode, WireEncode, WireError, WireResult, Writer};
use bytes::Bytes;
use std::sync::Arc;

/// Consistency level requested for a multicast message (§2.6).
///
/// *Agreed* (total) ordering falls out of the token order at no extra cost;
/// *safe* delivery additionally waits until every member is known to have
/// received the message, which costs one extra token round.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DeliveryMode {
    /// Deliver at first sight, in token order. Atomic + totally ordered.
    Agreed,
    /// Deliver only once all members of the membership have received the
    /// message (one extra token round).
    Safe,
}

impl WireEncode for DeliveryMode {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            DeliveryMode::Agreed => 0,
            DeliveryMode::Safe => 1,
        });
    }
}

impl WireDecode for DeliveryMode {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        match r.get_u8()? {
            0 => Ok(DeliveryMode::Agreed),
            1 => Ok(DeliveryMode::Safe),
            tag => Err(WireError::BadTag {
                ty: "DeliveryMode",
                tag,
            }),
        }
    }
}

/// The body an [`Attached`] entry carries on the token: either the full
/// application payload inline (the classic piggyback path) or an
/// out-of-band *manifest* — just the payload length, with the bytes
/// themselves disseminated directly to members as bulk frames (Ring
/// Paxos split: the ring fixes the order, the payload travels out of
/// band). For an `Oob` entry the `seen` set doubles as the stability
/// watermark: a node marks itself seen only once it holds the payload,
/// so `seen_by_all` certifies that every member can deliver.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AttachedBody {
    /// Full payload rides the token.
    Inline(Bytes),
    /// Payload travels out of band as bulk frames; the token carries only
    /// this id-manifest entry with the expected payload length.
    Oob {
        /// Length in bytes of the out-of-band payload.
        len: u64,
    },
}

impl AttachedBody {
    const TAG_INLINE: u8 = 0;
    const TAG_OOB: u8 = 1;
}

impl WireEncode for AttachedBody {
    fn encode(&self, w: &mut Writer) {
        match self {
            AttachedBody::Inline(payload) => {
                w.put_u8(Self::TAG_INLINE);
                w.put_bytes(payload);
            }
            AttachedBody::Oob { len } => {
                w.put_u8(Self::TAG_OOB);
                w.put_varint(*len);
            }
        }
    }
}

impl WireDecode for AttachedBody {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        match r.get_u8()? {
            Self::TAG_INLINE => Ok(AttachedBody::Inline(r.get_bytes()?)),
            Self::TAG_OOB => Ok(AttachedBody::Oob {
                len: r.get_varint()?,
            }),
            tag => Err(WireError::BadTag {
                ty: "AttachedBody",
                tag,
            }),
        }
    }
}

/// A multicast message riding the token ("the token is the locomotive for
/// the reliable multicast transport", §2.2).
///
/// The `(origin, seq)` pair identifies the message globally and is the
/// receivers' duplicate-suppression key across token-loss recovery. The
/// `seen` set records which members have received the payload; for
/// [`DeliveryMode::Safe`] messages the `confirmed` set records which
/// members have *observed* that everyone received it (the extra round).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Attached {
    /// Node that originated the multicast.
    pub origin: NodeId,
    /// Per-origin sequence number.
    pub seq: OriginSeq,
    /// Requested consistency level.
    pub mode: DeliveryMode,
    /// Members that have received the payload so far.
    pub seen: Vec<NodeId>,
    /// Members that have observed `seen` cover the membership (safe mode's
    /// second round); unused (empty) for agreed mode.
    pub confirmed: Vec<NodeId>,
    /// Application payload, inline or as an out-of-band manifest entry.
    pub body: AttachedBody,
}

impl Attached {
    /// Creates a fresh attachment originated by `origin`; the originator
    /// has trivially seen its own message.
    pub fn new(origin: NodeId, seq: OriginSeq, mode: DeliveryMode, payload: Bytes) -> Self {
        Attached {
            origin,
            seq,
            mode,
            seen: vec![origin],
            confirmed: Vec::new(),
            body: AttachedBody::Inline(payload),
        }
    }

    /// Creates a fresh out-of-band manifest entry: the token orders the
    /// `(origin, seq)` id while the `len`-byte payload travels as bulk
    /// frames. The originator holds the payload, so it is trivially seen.
    pub fn new_oob(origin: NodeId, seq: OriginSeq, mode: DeliveryMode, len: u64) -> Self {
        Attached {
            origin,
            seq,
            mode,
            seen: vec![origin],
            confirmed: Vec::new(),
            body: AttachedBody::Oob { len },
        }
    }

    /// The inline payload, if this entry carries one.
    pub fn inline_payload(&self) -> Option<&Bytes> {
        match &self.body {
            AttachedBody::Inline(p) => Some(p),
            AttachedBody::Oob { .. } => None,
        }
    }

    /// True if the payload travels out of band.
    pub fn is_oob(&self) -> bool {
        matches!(self.body, AttachedBody::Oob { .. })
    }

    /// Payload length in bytes, whether inline or out of band.
    pub fn payload_len(&self) -> usize {
        match &self.body {
            AttachedBody::Inline(p) => p.len(),
            AttachedBody::Oob { len } => *len as usize,
        }
    }

    /// Globally unique message key.
    pub fn key(&self) -> (NodeId, OriginSeq) {
        (self.origin, self.seq)
    }

    /// Records that `node` has received the payload. Idempotent.
    pub fn mark_seen(&mut self, node: NodeId) {
        if !self.seen.contains(&node) {
            self.seen.push(node);
        }
    }

    /// Records that `node` has observed all-received (safe phase 2). Idempotent.
    pub fn mark_confirmed(&mut self, node: NodeId) {
        if !self.confirmed.contains(&node) {
            self.confirmed.push(node);
        }
    }

    /// True if every member of `ring` has received the payload.
    pub fn seen_by_all(&self, ring: &Ring) -> bool {
        ring.iter().all(|m| self.seen.contains(&m))
    }

    /// True if every member of `ring` has observed all-received.
    pub fn confirmed_by_all(&self, ring: &Ring) -> bool {
        ring.iter().all(|m| self.confirmed.contains(&m))
    }
}

impl WireEncode for Attached {
    fn encode(&self, w: &mut Writer) {
        self.origin.encode(w);
        self.seq.encode(w);
        self.mode.encode(w);
        self.seen.encode(w);
        self.confirmed.encode(w);
        self.body.encode(w);
    }
}

impl WireDecode for Attached {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        Ok(Attached {
            origin: NodeId::decode(r)?,
            seq: OriginSeq::decode(r)?,
            mode: DeliveryMode::decode(r)?,
            seen: Vec::decode(r)?,
            confirmed: Vec::decode(r)?,
            body: AttachedBody::decode(r)?,
        })
    }
}

/// The token's piggybacked message list, stored copy-on-write.
///
/// `MsgList::clone` is a reference-count bump; the first mutation of a
/// shared list copies it once. The hot path snapshots the whole token
/// into `last_copy` on every hop, so sharing here (together with the CoW
/// [`Ring`]) makes `Token::clone` allocation-free, while the per-hop
/// `mark_seen` mutation pays at most one copy per message-carrying hop.
/// Read access goes through `Deref<Target = [Attached]>`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MsgList {
    items: Arc<Vec<Attached>>,
}

impl MsgList {
    /// Creates an empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy-on-write access to the items: copies them iff shared.
    fn items_mut(&mut self) -> &mut Vec<Attached> {
        Arc::make_mut(&mut self.items)
    }

    /// Appends a message.
    pub fn push(&mut self, m: Attached) {
        self.items_mut().push(m);
    }

    /// Mutable iteration (unshares the list first).
    pub fn iter_mut(&mut self) -> core::slice::IterMut<'_, Attached> {
        self.items_mut().iter_mut()
    }

    /// Keeps only the messages for which `f` returns true.
    pub fn retain<F: FnMut(&Attached) -> bool>(&mut self, f: F) {
        self.items_mut().retain(f);
    }

    /// Removes and returns every message, leaving the list empty.
    pub fn take_all(&mut self) -> Vec<Attached> {
        match Arc::try_unwrap(std::mem::take(&mut self.items)) {
            Ok(v) => v,
            Err(shared) => shared.as_ref().clone(),
        }
    }
}

impl core::ops::Deref for MsgList {
    type Target = [Attached];

    fn deref(&self) -> &[Attached] {
        &self.items
    }
}

impl From<Vec<Attached>> for MsgList {
    fn from(items: Vec<Attached>) -> Self {
        MsgList {
            items: Arc::new(items),
        }
    }
}

impl FromIterator<Attached> for MsgList {
    fn from_iter<I: IntoIterator<Item = Attached>>(iter: I) -> Self {
        Vec::from_iter(iter).into()
    }
}

impl WireEncode for MsgList {
    fn encode(&self, w: &mut Writer) {
        self.items.encode(w);
    }
}

impl WireDecode for MsgList {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        Ok(Vec::<Attached>::decode(r)?.into())
    }
}

/// Compact causal trace context carried in the token wire header, right
/// after the per-hop `seq` and before the body.
///
/// Three varints turn every token hop into a cross-node span that can be
/// merged without trusting wall clocks: `hop` orders hops within a
/// *circulation* (one uninterrupted token lineage segment), `circ` names
/// the circulation, and `parent` links a freshly minted circulation
/// (regeneration, merge, bootstrap) back to the hop it causally descends
/// from. The context is protocol-inert — nodes never branch on it — so it
/// rides the patched header at zero allocation cost and stays decoupled
/// from the protocol's own `seq` arithmetic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceCtx {
    /// Circulation id: `(minter_id << 40) | (seq at mint)`. Changes
    /// whenever a new token lineage segment is minted (founding,
    /// regeneration, merge); unique per minter because `seq` is monotonic
    /// along any lineage a single node ever extends.
    pub circ: u64,
    /// Hop sequence within the lineage; incremented alongside `seq` on
    /// every pass, so `hop_a < hop_b` is happens-before within one
    /// lineage regardless of clock skew between the observing nodes.
    pub hop: u64,
    /// Hop seq of the previous circulation's last observed hop at mint
    /// time (0 for a true founding with no ancestor).
    pub parent: u64,
}

impl TraceCtx {
    const MINT_SEQ_BITS: u32 = 40;

    /// Mints a new circulation: `minter` created a token lineage segment
    /// whose current seq is `seq`, causally after hop `parent`.
    pub fn mint(minter: NodeId, seq: u64, parent: u64) -> Self {
        TraceCtx {
            circ: (u64::from(minter.0) << Self::MINT_SEQ_BITS)
                | (seq & ((1 << Self::MINT_SEQ_BITS) - 1)),
            hop: seq,
            parent,
        }
    }

    /// The node that minted this circulation (upper bits of `circ`).
    pub fn minter(&self) -> NodeId {
        NodeId((self.circ >> Self::MINT_SEQ_BITS) as u32)
    }
}

impl WireEncode for TraceCtx {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.circ);
        w.put_varint(self.hop);
        w.put_varint(self.parent);
    }
}

impl WireDecode for TraceCtx {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        Ok(TraceCtx {
            circ: r.get_varint()?,
            hop: r.get_varint()?,
            parent: r.get_varint()?,
        })
    }
}

/// The circulating TOKEN (§2.2).
///
/// Exactly one token exists per group at any instant (the paper proves
/// uniqueness from the per-hop sequence number and the 911 grant rule).
/// The membership recorded on the token is the *authoritative* group
/// membership; nodes refresh their local view from each token they receive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// Per-hop sequence number; incremented by one on every pass. Starts
    /// at 1 for a freshly formed group, so `0` can mean "never saw a token".
    pub seq: u64,
    /// Causal trace context (circulation id, hop seq, causal parent).
    /// Part of the mutable header, re-patched on every hop.
    pub trace: TraceCtx,
    /// Authoritative membership, in ring order.
    pub ring: Ring,
    /// "To Be Merged" flag (§2.4): set when this token is handed to a
    /// lower group to be merged with that group's own token.
    pub tbm: bool,
    /// Piggybacked multicast messages, in global delivery order.
    pub msgs: MsgList,
}

impl Token {
    /// Creates the founding token of a new group with the given ring.
    /// The circulation is minted by the group id (lowest member).
    pub fn founding(ring: Ring) -> Self {
        let minter = ring.group_id().map_or(NodeId(0), |g| g.0);
        Token {
            seq: 1,
            trace: TraceCtx::mint(minter, 1, 0),
            ring,
            tbm: false,
            msgs: MsgList::new(),
        }
    }

    /// Group id of the membership on this token (lowest member id).
    pub fn group_id(&self) -> Option<GroupId> {
        self.ring.group_id()
    }

    /// Total bytes of piggybacked payloads (for accounting/tests).
    /// Counts only bytes that actually ride the token: inline payloads,
    /// not out-of-band manifest entries.
    pub fn payload_bytes(&self) -> usize {
        self.msgs
            .iter()
            .map(|m| m.inline_payload().map_or(0, Bytes::len))
            .sum()
    }

    /// Encodes the slow-changing *body* of the wire image — ring, tbm and
    /// piggybacked messages: everything after the per-hop `seq`. The
    /// patch-per-hop encoder ([`crate::token_codec::TokenEncoder`]) caches
    /// exactly these bytes between hops.
    pub fn encode_body(&self, w: &mut Writer) {
        self.ring.encode(w);
        w.put_bool(self.tbm);
        self.msgs.encode(w);
    }
}

impl WireEncode for Token {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.seq);
        self.trace.encode(w);
        self.encode_body(w);
    }
}

impl WireDecode for Token {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        Ok(Token {
            seq: r.get_varint()?,
            trace: TraceCtx::decode(r)?,
            ring: Ring::decode(r)?,
            tbm: r.get_bool()?,
            msgs: MsgList::decode(r)?,
        })
    }
}

/// A 911 call (§2.3): request for the right to regenerate a lost token,
/// or — when the caller is not in the receiver's membership — a join
/// request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Call911 {
    /// The calling node.
    pub from: NodeId,
    /// Sequence number on the caller's last local copy of the token
    /// (0 if the caller has never seen a token, e.g. a brand-new node).
    pub last_token_seq: u64,
    /// Caller-local request id, echoed in replies so stale verdicts can be
    /// discarded.
    pub req_id: u64,
}

impl WireEncode for Call911 {
    fn encode(&self, w: &mut Writer) {
        self.from.encode(w);
        w.put_varint(self.last_token_seq);
        w.put_varint(self.req_id);
    }
}

impl WireDecode for Call911 {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        Ok(Call911 {
            from: NodeId::decode(r)?,
            last_token_seq: r.get_varint()?,
            req_id: r.get_varint()?,
        })
    }
}

/// Verdict on a 911 regeneration request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict911 {
    /// The voter's local token copy is not newer and it does not hold the
    /// token: the caller may regenerate as far as this voter is concerned.
    Grant,
    /// The voter holds the token or has a more recent local copy
    /// (`newer_seq`); the caller must not regenerate.
    Deny {
        /// Sequence number of the voter's (newer) local copy, so the
        /// caller can update its expectations.
        newer_seq: u64,
    },
}

impl WireEncode for Verdict911 {
    fn encode(&self, w: &mut Writer) {
        match self {
            Verdict911::Grant => w.put_u8(0),
            Verdict911::Deny { newer_seq } => {
                w.put_u8(1);
                w.put_varint(*newer_seq);
            }
        }
    }
}

impl WireDecode for Verdict911 {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        match r.get_u8()? {
            0 => Ok(Verdict911::Grant),
            1 => Ok(Verdict911::Deny {
                newer_seq: r.get_varint()?,
            }),
            tag => Err(WireError::BadTag {
                ty: "Verdict911",
                tag,
            }),
        }
    }
}

/// Reply to a [`Call911`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Reply911 {
    /// The voting node.
    pub from: NodeId,
    /// Echo of the request id from the call.
    pub req_id: u64,
    /// The voter's verdict.
    pub verdict: Verdict911,
}

impl WireEncode for Reply911 {
    fn encode(&self, w: &mut Writer) {
        self.from.encode(w);
        w.put_varint(self.req_id);
        self.verdict.encode(w);
    }
}

impl WireDecode for Reply911 {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        Ok(Reply911 {
            from: NodeId::decode(r)?,
            req_id: r.get_varint()?,
            verdict: Verdict911::decode(r)?,
        })
    }
}

/// Discovery beacon (§2.4): sent periodically, at low frequency, to nodes
/// in the Eligible Membership that are absent from the current group
/// membership. Carries the sender's node id and its group id; a receiver
/// whose group id is *higher* treats it as a merge-join request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BodyOdor {
    /// The beaconing node.
    pub from: NodeId,
    /// The sender's current group id (lowest member of its group).
    pub group: GroupId,
}

impl WireEncode for BodyOdor {
    fn encode(&self, w: &mut Writer) {
        self.from.encode(w);
        self.group.encode(w);
    }
}

impl WireDecode for BodyOdor {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        Ok(BodyOdor {
            from: NodeId::decode(r)?,
            group: GroupId::decode(r)?,
        })
    }
}

/// An open-group submission (§2.6): a node *outside* the group sends a
/// message to any member; that member forwards it to the whole group as
/// an ordinary reliable multicast.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpenSubmit {
    /// The external sender's node id (not a group member).
    pub from: NodeId,
    /// Sender-local sequence number, for relay-side deduplication when
    /// the submission is retried toward a different member.
    pub seq: OriginSeq,
    /// The payload to multicast into the group.
    pub payload: Bytes,
}

impl WireEncode for OpenSubmit {
    fn encode(&self, w: &mut Writer) {
        self.from.encode(w);
        self.seq.encode(w);
        w.put_bytes(&self.payload);
    }
}

impl WireDecode for OpenSubmit {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        Ok(OpenSubmit {
            from: NodeId::decode(r)?,
            seq: OriginSeq::decode(r)?,
            payload: r.get_bytes()?,
        })
    }
}

/// An out-of-band bulk payload frame: the payload of a multicast whose
/// token entry is an [`AttachedBody::Oob`] manifest, sent directly to
/// each member (and re-sent by any holder answering a [`BulkNack`]).
/// Keyed by the same `(origin, seq)` bulk id the manifest orders.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BulkData {
    /// Node that originated the multicast.
    pub origin: NodeId,
    /// Per-origin sequence number (the bulk id, with `origin`).
    pub seq: OriginSeq,
    /// The application payload.
    pub payload: Bytes,
}

impl WireEncode for BulkData {
    fn encode(&self, w: &mut Writer) {
        self.origin.encode(w);
        self.seq.encode(w);
        w.put_bytes(&self.payload);
    }
}

impl WireDecode for BulkData {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        Ok(BulkData {
            origin: NodeId::decode(r)?,
            seq: OriginSeq::decode(r)?,
            payload: r.get_bytes()?,
        })
    }
}

/// A negative acknowledgement for a missing bulk payload: the sender saw
/// the `(origin, seq)` id ordered on the token but never received (or
/// lost) the [`BulkData`] frame, and asks the receiver to retransmit it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BulkNack {
    /// The node requesting retransmission (where to send the payload).
    pub from: NodeId,
    /// Origin of the missing multicast.
    pub origin: NodeId,
    /// Per-origin sequence number of the missing multicast.
    pub seq: OriginSeq,
}

impl WireEncode for BulkNack {
    fn encode(&self, w: &mut Writer) {
        self.from.encode(w);
        self.origin.encode(w);
        self.seq.encode(w);
    }
}

impl WireDecode for BulkNack {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        Ok(BulkNack {
            from: NodeId::decode(r)?,
            origin: NodeId::decode(r)?,
            seq: OriginSeq::decode(r)?,
        })
    }
}

/// Any session-layer datagram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SessionMsg {
    /// The circulating token.
    Token(Token),
    /// 911 regeneration/join request.
    Call911(Call911),
    /// 911 verdict.
    Reply911(Reply911),
    /// Discovery beacon.
    BodyOdor(BodyOdor),
    /// Open-group submission from a non-member (§2.6).
    Open(OpenSubmit),
    /// Out-of-band bulk payload frame.
    Bulk(BulkData),
    /// Request to retransmit a missing bulk payload.
    BulkNack(BulkNack),
}

impl SessionMsg {
    /// Wire tag of the [`SessionMsg::Token`] variant. Shared with the
    /// patch-per-hop [`crate::token_codec::TokenEncoder`], which writes
    /// the tag itself so its output stays byte-identical to
    /// [`WireEncode::encode`].
    pub const TAG_TOKEN: u8 = 0;
    /// Wire tag of [`SessionMsg::Call911`].
    pub const TAG_CALL911: u8 = 1;
    /// Wire tag of [`SessionMsg::Reply911`].
    pub const TAG_REPLY911: u8 = 2;
    /// Wire tag of [`SessionMsg::BodyOdor`].
    pub const TAG_BODYODOR: u8 = 3;
    /// Wire tag of [`SessionMsg::Open`].
    pub const TAG_OPEN: u8 = 4;
    /// Wire tag of [`SessionMsg::Bulk`].
    pub const TAG_BULK: u8 = 5;
    /// Wire tag of [`SessionMsg::BulkNack`].
    pub const TAG_BULK_NACK: u8 = 6;

    /// Short human-readable kind name (for traces).
    pub fn kind(&self) -> &'static str {
        match self {
            SessionMsg::Token(_) => "TOKEN",
            SessionMsg::Call911(_) => "911",
            SessionMsg::Reply911(_) => "911-REPLY",
            SessionMsg::BodyOdor(_) => "BODYODOR",
            SessionMsg::Open(_) => "OPEN",
            SessionMsg::Bulk(_) => "BULK",
            SessionMsg::BulkNack(_) => "BULK-NACK",
        }
    }
}

impl WireEncode for SessionMsg {
    fn encode(&self, w: &mut Writer) {
        match self {
            SessionMsg::Token(t) => {
                w.put_u8(Self::TAG_TOKEN);
                t.encode(w);
            }
            SessionMsg::Call911(c) => {
                w.put_u8(Self::TAG_CALL911);
                c.encode(w);
            }
            SessionMsg::Reply911(rep) => {
                w.put_u8(Self::TAG_REPLY911);
                rep.encode(w);
            }
            SessionMsg::BodyOdor(b) => {
                w.put_u8(Self::TAG_BODYODOR);
                b.encode(w);
            }
            SessionMsg::Open(o) => {
                w.put_u8(Self::TAG_OPEN);
                o.encode(w);
            }
            SessionMsg::Bulk(b) => {
                w.put_u8(Self::TAG_BULK);
                b.encode(w);
            }
            SessionMsg::BulkNack(n) => {
                w.put_u8(Self::TAG_BULK_NACK);
                n.encode(w);
            }
        }
    }
}

impl WireDecode for SessionMsg {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        match r.get_u8()? {
            Self::TAG_TOKEN => Ok(SessionMsg::Token(Token::decode(r)?)),
            Self::TAG_CALL911 => Ok(SessionMsg::Call911(Call911::decode(r)?)),
            Self::TAG_REPLY911 => Ok(SessionMsg::Reply911(Reply911::decode(r)?)),
            Self::TAG_BODYODOR => Ok(SessionMsg::BodyOdor(BodyOdor::decode(r)?)),
            Self::TAG_OPEN => Ok(SessionMsg::Open(OpenSubmit::decode(r)?)),
            Self::TAG_BULK => Ok(SessionMsg::Bulk(BulkData::decode(r)?)),
            Self::TAG_BULK_NACK => Ok(SessionMsg::BulkNack(BulkNack::decode(r)?)),
            tag => Err(WireError::BadTag {
                ty: "SessionMsg",
                tag,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ring(ids: &[u32]) -> Ring {
        Ring::from_iter(ids.iter().map(|&i| NodeId(i)))
    }

    #[test]
    fn attached_seen_tracking() {
        let mut a = Attached::new(
            NodeId(1),
            OriginSeq(5),
            DeliveryMode::Agreed,
            Bytes::from_static(b"x"),
        );
        assert_eq!(a.seen, vec![NodeId(1)]);
        a.mark_seen(NodeId(2));
        a.mark_seen(NodeId(2));
        assert_eq!(a.seen, vec![NodeId(1), NodeId(2)]);
        assert!(!a.seen_by_all(&ring(&[1, 2, 3])));
        a.mark_seen(NodeId(3));
        assert!(a.seen_by_all(&ring(&[1, 2, 3])));
        assert_eq!(a.key(), (NodeId(1), OriginSeq(5)));
    }

    #[test]
    fn attached_confirmed_tracking() {
        let mut a = Attached::new(NodeId(1), OriginSeq(0), DeliveryMode::Safe, Bytes::new());
        assert!(!a.confirmed_by_all(&ring(&[1, 2])));
        a.mark_confirmed(NodeId(1));
        a.mark_confirmed(NodeId(2));
        a.mark_confirmed(NodeId(2));
        assert!(a.confirmed_by_all(&ring(&[1, 2])));
        assert_eq!(a.confirmed.len(), 2);
    }

    #[test]
    fn founding_token() {
        let t = Token::founding(ring(&[3, 1, 2]));
        assert_eq!(t.seq, 1);
        assert!(!t.tbm);
        assert!(t.msgs.is_empty());
        assert_eq!(t.group_id(), Some(GroupId(NodeId(1))));
        // The founding circulation is minted by the group id at seq 1
        // with no causal ancestor.
        assert_eq!(t.trace.minter(), NodeId(1));
        assert_eq!(t.trace.hop, 1);
        assert_eq!(t.trace.parent, 0);
    }

    #[test]
    fn trace_ctx_mint_is_unique_per_minter_and_seq() {
        let a = TraceCtx::mint(NodeId(3), 17, 5);
        let b = TraceCtx::mint(NodeId(3), 19, 17);
        let c = TraceCtx::mint(NodeId(4), 17, 5);
        assert_ne!(a.circ, b.circ, "same minter, later seq");
        assert_ne!(a.circ, c.circ, "different minter, same seq");
        assert_eq!(a.minter(), NodeId(3));
        assert_eq!(c.minter(), NodeId(4));
        assert_eq!(a.hop, 17);
        assert_eq!(a.parent, 5);
    }

    #[test]
    fn token_payload_bytes() {
        let mut t = Token::founding(ring(&[1]));
        t.msgs.push(Attached::new(
            NodeId(1),
            OriginSeq(0),
            DeliveryMode::Agreed,
            Bytes::from(vec![0u8; 10]),
        ));
        t.msgs.push(Attached::new(
            NodeId(1),
            OriginSeq(1),
            DeliveryMode::Agreed,
            Bytes::from(vec![0u8; 5]),
        ));
        assert_eq!(t.payload_bytes(), 15);
    }

    #[test]
    fn oob_manifest_entries_carry_only_ids() {
        let inline = Attached::new(
            NodeId(1),
            OriginSeq(0),
            DeliveryMode::Agreed,
            Bytes::from(vec![0u8; 10]),
        );
        let oob = Attached::new_oob(NodeId(1), OriginSeq(1), DeliveryMode::Agreed, 1024);
        assert!(!inline.is_oob());
        assert!(oob.is_oob());
        assert_eq!(inline.payload_len(), 10);
        assert_eq!(oob.payload_len(), 1024);
        assert!(inline.inline_payload().is_some());
        assert!(oob.inline_payload().is_none());
        assert_eq!(oob.seen, vec![NodeId(1)], "originator holds the payload");
        // Only inline bytes count as token freight.
        let mut t = Token::founding(ring(&[1]));
        t.msgs.push(inline);
        t.msgs.push(oob);
        assert_eq!(t.payload_bytes(), 10);
        // The manifest wire form is a handful of varints, not the payload.
        let wire = t.msgs[1].encode_to_bytes();
        assert!(wire.len() < 32, "manifest entry is compact: {}", wire.len());
    }

    #[test]
    fn msg_list_clone_shares_until_mutated() {
        let mut a = MsgList::new();
        a.push(Attached::new(
            NodeId(1),
            OriginSeq(0),
            DeliveryMode::Agreed,
            Bytes::from_static(b"x"),
        ));
        let mut b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
        // Mutating through iter_mut unshares; the original is untouched.
        for m in b.iter_mut() {
            m.mark_seen(NodeId(2));
        }
        assert_ne!(a.as_ptr(), b.as_ptr());
        assert_eq!(a[0].seen, vec![NodeId(1)]);
        assert_eq!(b[0].seen, vec![NodeId(1), NodeId(2)]);
        // take_all drains a shared list without disturbing the other copy.
        let drained = b.take_all();
        assert_eq!(drained.len(), 1);
        assert!(b.is_empty());
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn session_msg_kinds() {
        assert_eq!(
            SessionMsg::Token(Token::founding(ring(&[1]))).kind(),
            "TOKEN"
        );
        assert_eq!(
            SessionMsg::Call911(Call911 {
                from: NodeId(1),
                last_token_seq: 0,
                req_id: 1
            })
            .kind(),
            "911"
        );
        assert_eq!(
            SessionMsg::Reply911(Reply911 {
                from: NodeId(1),
                req_id: 1,
                verdict: Verdict911::Grant
            })
            .kind(),
            "911-REPLY"
        );
        assert_eq!(
            SessionMsg::BodyOdor(BodyOdor {
                from: NodeId(1),
                group: GroupId(NodeId(1))
            })
            .kind(),
            "BODYODOR"
        );
        assert_eq!(
            SessionMsg::Bulk(BulkData {
                origin: NodeId(1),
                seq: OriginSeq(0),
                payload: Bytes::new()
            })
            .kind(),
            "BULK"
        );
        assert_eq!(
            SessionMsg::BulkNack(BulkNack {
                from: NodeId(2),
                origin: NodeId(1),
                seq: OriginSeq(0)
            })
            .kind(),
            "BULK-NACK"
        );
    }

    #[test]
    fn wire_round_trip_all_variants() {
        let mut token = Token::founding(ring(&[1, 2, 3]));
        token.tbm = true;
        token.seq = 42;
        token.msgs.push(Attached {
            origin: NodeId(2),
            seq: OriginSeq(7),
            mode: DeliveryMode::Safe,
            seen: vec![NodeId(2), NodeId(3)],
            confirmed: vec![NodeId(2)],
            body: AttachedBody::Inline(Bytes::from_static(b"payload")),
        });
        token.msgs.push(Attached::new_oob(
            NodeId(3),
            OriginSeq(9),
            DeliveryMode::Agreed,
            4096,
        ));
        let cases = vec![
            SessionMsg::Token(token),
            SessionMsg::Call911(Call911 {
                from: NodeId(9),
                last_token_seq: 1234,
                req_id: 8,
            }),
            SessionMsg::Reply911(Reply911 {
                from: NodeId(1),
                req_id: 8,
                verdict: Verdict911::Deny { newer_seq: 2000 },
            }),
            SessionMsg::Reply911(Reply911 {
                from: NodeId(1),
                req_id: 9,
                verdict: Verdict911::Grant,
            }),
            SessionMsg::BodyOdor(BodyOdor {
                from: NodeId(4),
                group: GroupId(NodeId(2)),
            }),
            SessionMsg::Open(OpenSubmit {
                from: NodeId(99),
                seq: OriginSeq(3),
                payload: Bytes::from_static(b"outside"),
            }),
            SessionMsg::Bulk(BulkData {
                origin: NodeId(2),
                seq: OriginSeq(7),
                payload: Bytes::from_static(b"bulk payload"),
            }),
            SessionMsg::BulkNack(BulkNack {
                from: NodeId(5),
                origin: NodeId(2),
                seq: OriginSeq(7),
            }),
        ];
        for msg in cases {
            let buf = msg.encode_to_bytes();
            assert_eq!(SessionMsg::decode_from_bytes(&buf).unwrap(), msg);
        }
    }

    #[test]
    fn decode_bad_tag_fails() {
        let buf = [200u8, 0, 0];
        assert!(matches!(
            SessionMsg::decode_from_bytes(&buf),
            Err(WireError::BadTag {
                ty: "SessionMsg",
                tag: 200
            })
        ));
    }

    prop_compose! {
        fn arb_attached()(
            origin in 0u32..100,
            seq in 0u64..10_000,
            mode in prop_oneof![Just(DeliveryMode::Agreed), Just(DeliveryMode::Safe)],
            seen in proptest::collection::vec(0u32..100, 0..8),
            confirmed in proptest::collection::vec(0u32..100, 0..8),
            payload in proptest::collection::vec(any::<u8>(), 0..64),
            is_oob in any::<bool>(),
            oob_len in 0u64..1_000_000,
        ) -> Attached {
            Attached {
                origin: NodeId(origin),
                seq: OriginSeq(seq),
                mode,
                seen: seen.into_iter().map(NodeId).collect(),
                confirmed: confirmed.into_iter().map(NodeId).collect(),
                body: if is_oob {
                    AttachedBody::Oob { len: oob_len }
                } else {
                    AttachedBody::Inline(Bytes::from(payload))
                },
            }
        }
    }

    prop_compose! {
        fn arb_token()(
            seq in 0u64..u64::MAX,
            circ_minter in 0u32..64,
            parent in 0u64..10_000,
            ids in proptest::collection::btree_set(0u32..64, 0..16),
            tbm in any::<bool>(),
            msgs in proptest::collection::vec(arb_attached(), 0..6),
        ) -> Token {
            let ring = Ring::from_iter(ids.into_iter().map(NodeId));
            let trace = TraceCtx::mint(NodeId(circ_minter), seq, parent);
            Token { seq, trace, ring, tbm, msgs: msgs.into() }
        }
    }

    proptest! {
        #[test]
        fn prop_token_wire_round_trip(t in arb_token()) {
            let msg = SessionMsg::Token(t);
            let buf = msg.encode_to_bytes();
            prop_assert_eq!(SessionMsg::decode_from_bytes(&buf).unwrap(), msg);
        }

        #[test]
        fn prop_garbage_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            let _ = SessionMsg::decode_from_bytes(&data);
        }
    }
}
