//! The logical ring of group members.
//!
//! §2.2 of the paper: "The nodes in the group are ordered in a logical
//! ring." The [`Ring`] container owns that order. The token's membership
//! field *is* a `Ring`; every node also keeps a local copy that it refreshes
//! from each token it receives.
//!
//! Order is semantically meaningful: the token travels from each member to
//! its successor, joins insert the new node immediately after the sponsor
//! (so the sponsor can hand the token straight to it, §2.3), and removals
//! splice the ring without disturbing the rest of the order.

use crate::id::{GroupId, NodeId};
use crate::wire::{Reader, WireDecode, WireEncode, WireResult, Writer};
use core::fmt;
use std::sync::Arc;

/// An ordered ring of distinct node ids.
///
/// Invariant: members are distinct. All mutating operations preserve this;
/// decoding rejects duplicate entries.
///
/// Storage is copy-on-write: `Ring::clone` is a reference-count bump, and
/// the first mutation of a shared ring copies the member list once. The
/// token hot path clones the ring on every hop (`last_copy`, forwarding
/// snapshots, local membership refresh) while membership changes are rare,
/// so steady-state hops never copy the member vector.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Ring {
    members: Arc<Vec<NodeId>>,
}

impl Ring {
    /// Creates an empty ring.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy-on-write access to the member list: copies it iff shared.
    fn members_mut(&mut self) -> &mut Vec<NodeId> {
        Arc::make_mut(&mut self.members)
    }

    /// Creates a ring from an iterator of node ids, keeping the first
    /// occurrence of each id and dropping later duplicates.
    /// (Also available through the [`FromIterator`] impl.)
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let mut ring = Ring::new();
        for id in iter {
            ring.push(id);
        }
        ring
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// True if `node` is a member.
    pub fn contains(&self, node: NodeId) -> bool {
        self.members.contains(&node)
    }

    /// Position of `node` in ring order, if present.
    pub fn position(&self, node: NodeId) -> Option<usize> {
        self.members.iter().position(|&m| m == node)
    }

    /// Iterates over members in ring order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.members.iter().copied()
    }

    /// Members in ring order as a slice.
    pub fn as_slice(&self) -> &[NodeId] {
        &self.members
    }

    /// The group id of this membership: the lowest member id (§2.4).
    /// `None` for an empty ring.
    pub fn group_id(&self) -> Option<GroupId> {
        self.members.iter().min().copied().map(GroupId)
    }

    /// The member after `node` in ring order, wrapping around. For a
    /// single-member ring this is the node itself. `None` if `node` is not
    /// a member or the ring is empty.
    pub fn next_after(&self, node: NodeId) -> Option<NodeId> {
        let pos = self.position(node)?;
        Some(self.members[(pos + 1) % self.members.len()])
    }

    /// All members after `node`, in ring order, excluding `node` itself.
    /// Used when walking the ring to find the next *healthy* successor
    /// after a failure-on-delivery (§2.2). Empty if `node` is not a member.
    pub fn successors_of(&self, node: NodeId) -> Vec<NodeId> {
        match self.position(node) {
            None => Vec::new(),
            Some(pos) => {
                let n = self.members.len();
                (1..n).map(|k| self.members[(pos + k) % n]).collect()
            }
        }
    }

    /// Appends `node` at the end of the ring if not already present.
    /// Returns `true` if the node was inserted.
    pub fn push(&mut self, node: NodeId) -> bool {
        if self.contains(node) {
            false
        } else {
            self.members_mut().push(node);
            true
        }
    }

    /// Inserts `node` immediately after `anchor`. Falls back to appending
    /// if `anchor` is not a member. Returns `true` if the node was
    /// inserted (i.e. it was not already a member).
    pub fn insert_after(&mut self, anchor: NodeId, node: NodeId) -> bool {
        if self.contains(node) {
            return false;
        }
        match self.position(anchor) {
            Some(pos) => self.members_mut().insert(pos + 1, node),
            None => self.members_mut().push(node),
        }
        true
    }

    /// Removes `node` from the ring. Returns `true` if it was present.
    pub fn remove(&mut self, node: NodeId) -> bool {
        match self.position(node) {
            Some(pos) => {
                self.members_mut().remove(pos);
                true
            }
            None => false,
        }
    }

    /// Merges `other` into `self`: members of `other` that are not already
    /// present are appended in their ring order. Used by the token merge
    /// step of the group-merge protocol (§2.4).
    pub fn merge(&mut self, other: &Ring) {
        for id in other.iter() {
            self.push(id);
        }
    }

    /// True if every member of `other` is a member of `self`.
    pub fn is_superset_of(&self, other: &Ring) -> bool {
        other.iter().all(|id| self.contains(id))
    }

    /// True if both rings have the same member *set* (order ignored).
    pub fn same_members(&self, other: &Ring) -> bool {
        self.len() == other.len() && self.is_superset_of(other)
    }
}

impl fmt::Debug for Ring {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ring[")?;
        for (i, m) in self.members.iter().enumerate() {
            if i > 0 {
                write!(f, "→")?;
            }
            write!(f, "{m}")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<NodeId> for Ring {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        Ring::from_iter(iter)
    }
}

impl<const N: usize> From<[u32; N]> for Ring {
    fn from(ids: [u32; N]) -> Self {
        Ring::from_iter(ids.into_iter().map(NodeId))
    }
}

impl WireEncode for Ring {
    fn encode(&self, w: &mut Writer) {
        self.members.encode(w);
    }
}

impl WireDecode for Ring {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        let members = Vec::<NodeId>::decode(r)?;
        let ring = Ring::from_iter(members.iter().copied());
        if ring.len() != members.len() {
            // Duplicate member ids on the wire indicate corruption.
            return Err(crate::wire::WireError::BadTag {
                ty: "Ring(dup)",
                tag: 0,
            });
        }
        Ok(ring)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{WireDecode, WireEncode};
    use proptest::prelude::*;

    fn ring(ids: &[u32]) -> Ring {
        Ring::from_iter(ids.iter().map(|&i| NodeId(i)))
    }

    #[test]
    fn construction_dedups() {
        let r = ring(&[1, 2, 1, 3, 2]);
        assert_eq!(r.as_slice(), &[NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn next_after_wraps() {
        let r = ring(&[1, 2, 3]);
        assert_eq!(r.next_after(NodeId(1)), Some(NodeId(2)));
        assert_eq!(r.next_after(NodeId(3)), Some(NodeId(1)));
        assert_eq!(r.next_after(NodeId(9)), None);
    }

    #[test]
    fn single_member_ring_succeeds_itself() {
        let r = ring(&[7]);
        assert_eq!(r.next_after(NodeId(7)), Some(NodeId(7)));
        assert!(r.successors_of(NodeId(7)).is_empty());
    }

    #[test]
    fn successors_walk_in_order() {
        let r = ring(&[1, 2, 3, 4]);
        assert_eq!(
            r.successors_of(NodeId(2)),
            vec![NodeId(3), NodeId(4), NodeId(1)]
        );
    }

    #[test]
    fn insert_after_places_correctly() {
        // Paper §2.3: ring ACD, node B rejoins via C → ring becomes ACBD.
        let mut r = ring(&[1, 3, 4]); // A=1 C=3 D=4
        assert!(r.insert_after(NodeId(3), NodeId(2)));
        assert_eq!(r.as_slice(), &[NodeId(1), NodeId(3), NodeId(2), NodeId(4)]);
        // Duplicate insert is a no-op.
        assert!(!r.insert_after(NodeId(1), NodeId(2)));
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn insert_after_missing_anchor_appends() {
        let mut r = ring(&[1, 2]);
        assert!(r.insert_after(NodeId(99), NodeId(3)));
        assert_eq!(r.as_slice(), &[NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn remove_splices() {
        let mut r = ring(&[1, 2, 3]);
        assert!(r.remove(NodeId(2)));
        assert_eq!(r.as_slice(), &[NodeId(1), NodeId(3)]);
        assert!(!r.remove(NodeId(2)));
        assert_eq!(r.next_after(NodeId(1)), Some(NodeId(3)));
    }

    #[test]
    fn group_id_is_lowest_member() {
        assert_eq!(ring(&[5, 2, 9]).group_id(), Some(GroupId(NodeId(2))));
        assert_eq!(Ring::new().group_id(), None);
    }

    #[test]
    fn merge_appends_missing_in_order() {
        let mut a = ring(&[1, 3]);
        let b = ring(&[2, 3, 4]);
        a.merge(&b);
        assert_eq!(a.as_slice(), &[NodeId(1), NodeId(3), NodeId(2), NodeId(4)]);
    }

    #[test]
    fn subset_and_same_members() {
        let a = ring(&[1, 2, 3]);
        let b = ring(&[3, 1, 2]);
        let c = ring(&[1, 2]);
        assert!(a.same_members(&b));
        assert!(a.is_superset_of(&c));
        assert!(!c.is_superset_of(&a));
        assert!(!a.same_members(&c));
    }

    #[test]
    fn clone_shares_until_mutated() {
        let a = ring(&[1, 2, 3]);
        let mut b = a.clone();
        // A clone shares the same member storage…
        assert_eq!(a.as_slice().as_ptr(), b.as_slice().as_ptr());
        // …until one side mutates, which must not disturb the other.
        b.remove(NodeId(2));
        assert_eq!(a.as_slice(), &[NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(b.as_slice(), &[NodeId(1), NodeId(3)]);
        assert_ne!(a.as_slice().as_ptr(), b.as_slice().as_ptr());
    }

    #[test]
    fn wire_round_trip() {
        let r = ring(&[4, 1, 7, 2]);
        let buf = r.encode_to_bytes();
        assert_eq!(Ring::decode_from_bytes(&buf).unwrap(), r);
    }

    #[test]
    fn wire_rejects_duplicates() {
        let dup: Vec<NodeId> = vec![NodeId(1), NodeId(1)];
        let buf = dup.encode_to_bytes();
        assert!(Ring::decode_from_bytes(&buf).is_err());
    }

    proptest! {
        #[test]
        fn prop_ring_ops_preserve_distinctness(
            ids in proptest::collection::vec(0u32..20, 0..20),
            inserts in proptest::collection::vec((0u32..20, 0u32..20), 0..10),
            removes in proptest::collection::vec(0u32..20, 0..10),
        ) {
            let mut r = Ring::from_iter(ids.into_iter().map(NodeId));
            for (anchor, node) in inserts {
                r.insert_after(NodeId(anchor), NodeId(node));
            }
            for node in removes {
                r.remove(NodeId(node));
            }
            let mut seen = std::collections::HashSet::new();
            for m in r.iter() {
                prop_assert!(seen.insert(m), "duplicate member {m:?}");
            }
        }

        #[test]
        fn prop_next_after_cycles_whole_ring(ids in proptest::collection::vec(0u32..50, 1..20)) {
            let r = Ring::from_iter(ids.into_iter().map(NodeId));
            let start = r.as_slice()[0];
            let mut cur = start;
            let mut visited = vec![];
            for _ in 0..r.len() {
                visited.push(cur);
                cur = r.next_after(cur).unwrap();
            }
            prop_assert_eq!(cur, start);
            visited.sort();
            let mut all: Vec<_> = r.iter().collect();
            all.sort();
            prop_assert_eq!(visited, all);
        }

        #[test]
        fn prop_merge_is_union(
            a in proptest::collection::vec(0u32..30, 0..15),
            b in proptest::collection::vec(0u32..30, 0..15),
        ) {
            let mut m = Ring::from_iter(a.iter().copied().map(NodeId));
            let rb = Ring::from_iter(b.iter().copied().map(NodeId));
            m.merge(&rb);
            let expect: std::collections::BTreeSet<u32> =
                a.iter().chain(b.iter()).copied().collect();
            let got: std::collections::BTreeSet<u32> = m.iter().map(|n| n.0).collect();
            prop_assert_eq!(got, expect);
        }

        #[test]
        fn prop_wire_round_trip(ids in proptest::collection::vec(0u32..1000, 0..30)) {
            let r = Ring::from_iter(ids.into_iter().map(NodeId));
            let buf = r.encode_to_bytes();
            prop_assert_eq!(Ring::decode_from_bytes(&buf).unwrap(), r);
        }
    }
}
