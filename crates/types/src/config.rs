//! Configuration for the transport and session layers.

use crate::id::NodeId;
use crate::time::Duration;

/// How the transport uses a peer's multiple physical addresses (§2.1).
///
/// The Raincore Transport Service lets each node have several physical
/// addresses (redundant links); sends can walk them sequentially or fan
/// out in parallel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SendStrategy {
    /// Try address 0; on retry exhaustion move to address 1; and so on.
    Sequential,
    /// Send every attempt on all addresses simultaneously; first ack wins.
    Parallel,
}

/// Failure-detection mode (used by the A4 ablation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DetectionMode {
    /// The paper's aggressive protocol: the *first* failure-on-delivery
    /// notification removes the target from the membership (§2.2).
    Aggressive,
    /// Conservative variant: only the 911/HUNGRY timeout machinery reacts;
    /// failure-on-delivery merely retries through successors without
    /// eagerly editing the membership. Used as an ablation baseline.
    TimeoutOnly,
}

/// Configuration of the Raincore Transport Service (§2.1).
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TransportConfig {
    /// Time to wait for an acknowledgement before retransmitting.
    pub retry_timeout: Duration,
    /// Number of transmissions (1 original + `max_retries - 1` retries)
    /// per physical address before moving on / reporting failure.
    pub max_retries: u32,
    /// Multi-address send strategy.
    pub strategy: SendStrategy,
    /// Maximum bytes per network datagram; larger messages are fragmented
    /// and reassembled by the transport.
    pub mtu: usize,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            retry_timeout: Duration::from_millis(50),
            max_retries: 3,
            strategy: SendStrategy::Sequential,
            mtu: 1400,
        }
    }
}

impl TransportConfig {
    /// Validates the configuration, returning a human-readable reason on
    /// rejection.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.max_retries == 0 {
            return Err("max_retries must be at least 1");
        }
        if self.mtu < 64 {
            return Err("mtu must be at least 64 bytes");
        }
        if self.retry_timeout.is_zero() {
            return Err("retry_timeout must be positive");
        }
        Ok(())
    }
}

/// Configuration of the Raincore Distributed Session Service (§2.2–2.4).
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SessionConfig {
    /// How long a node holds the token (EATING) before passing it on.
    /// Together with ring size and link latency this sets `L`, the token
    /// round frequency of §4.1.
    pub token_hold: Duration,
    /// How long a node may stay HUNGRY before it suspects token loss and
    /// enters STARVING (§2.3). Should comfortably exceed one expected
    /// token round trip.
    pub hungry_timeout: Duration,
    /// How long a STARVING node waits for 911 verdicts before giving up
    /// and re-calling 911.
    pub starving_retry: Duration,
    /// Period of the BODYODOR discovery beacon (§2.4) — "a small message
    /// sent with a regular, but low frequency".
    pub beacon_period: Duration,
    /// How many consecutive unanswered join probes a token-less joiner
    /// tolerates before concluding that every token copy in the cluster
    /// is gone (total copy loss) and founding a fresh singleton group.
    /// Concurrently founded groups are glued back together by discovery
    /// and merge (§2.4). Probes are paced by `starving_retry`. Zero
    /// disables the bootstrap (a joiner then probes forever).
    pub bootstrap_probe_limit: u32,
    /// Every node this member may ever form a group with (the Eligible
    /// Membership, §2.4). Must contain the local node.
    pub eligible: Vec<NodeId>,
    /// Maximum application payload accepted by `multicast`.
    pub max_payload: usize,
    /// Maximum multicast messages riding the token at once. When the
    /// token is full, locally queued messages wait for a later pass —
    /// backpressure that bounds token size (and hence hop latency) under
    /// bursts.
    pub max_attached: usize,
    /// Failure-detection mode (Aggressive is the paper's design).
    pub detection: DetectionMode,
    /// Size threshold (bytes) above which a multicast payload is
    /// disseminated out of band as bulk frames while the token carries
    /// only an id-manifest entry (Ring Paxos split). Payloads strictly
    /// smaller than the threshold ride the token inline as before. `0`
    /// disables the out-of-band path entirely (every payload piggybacks).
    pub bulk_threshold: usize,
    /// How long a node waits for the out-of-band payload of an
    /// already-ordered manifest id before NACK-pulling it from a holder.
    /// Re-arms on every retry, rotating through known holders.
    pub bulk_pull_timeout: Duration,
    /// Maximum `(origin, seq) → payload` entries in the bulk store (the
    /// origin's retransmit cache plus buffered not-yet-ordered receives).
    /// Oldest entries are evicted first when full.
    pub bulk_cache_entries: usize,
    /// Test-only fault dial: deliver an ordered manifest id even when the
    /// out-of-band payload has not arrived (an empty payload is delivered
    /// in its place). Exists so the model checker and chaos harness can
    /// demonstrate the id-without-payload hazard their completeness
    /// oracle guards against. Never enable outside verification.
    pub bulk_blind_delivery: bool,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            token_hold: Duration::from_millis(10),
            hungry_timeout: Duration::from_millis(500),
            starving_retry: Duration::from_millis(200),
            beacon_period: Duration::from_secs(1),
            bootstrap_probe_limit: 16,
            eligible: Vec::new(),
            max_payload: 60_000,
            max_attached: 256,
            detection: DetectionMode::Aggressive,
            bulk_threshold: 0,
            bulk_pull_timeout: Duration::from_millis(50),
            bulk_cache_entries: 1024,
            bulk_blind_delivery: false,
        }
    }
}

impl SessionConfig {
    /// Convenience: a config whose eligible membership is nodes `0..n`.
    pub fn for_cluster(n: u32) -> Self {
        SessionConfig {
            eligible: (0..n).map(NodeId).collect(),
            ..Default::default()
        }
    }

    /// Sets the token hold time so that (ignoring network latency) a ring
    /// of `n` nodes completes about `rounds_per_sec` token round trips per
    /// second — the paper's `L` parameter (§4.1).
    pub fn with_token_rate(mut self, n: u32, rounds_per_sec: f64) -> Self {
        let round = Duration::from_secs_f64(1.0 / rounds_per_sec.max(1e-6));
        self.token_hold = round.div(u64::from(n.max(1)));
        self
    }

    /// Validates the configuration, returning a human-readable reason on
    /// rejection.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.token_hold.is_zero() {
            return Err("token_hold must be positive");
        }
        if self.hungry_timeout <= self.token_hold {
            return Err("hungry_timeout must exceed token_hold");
        }
        if self.starving_retry.is_zero() {
            return Err("starving_retry must be positive");
        }
        if self.max_payload == 0 {
            return Err("max_payload must be positive");
        }
        if self.max_attached == 0 {
            return Err("max_attached must be positive");
        }
        if self.bulk_threshold > 0 {
            if self.bulk_pull_timeout.is_zero() {
                return Err("bulk_pull_timeout must be positive when bulk dissemination is on");
            }
            if self.bulk_cache_entries == 0 {
                return Err("bulk_cache_entries must be positive when bulk dissemination is on");
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        TransportConfig::default().validate().unwrap();
        SessionConfig::default().validate().unwrap();
    }

    #[test]
    fn transport_rejects_bad_values() {
        let c = TransportConfig {
            max_retries: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = TransportConfig {
            mtu: 10,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = TransportConfig {
            retry_timeout: Duration::ZERO,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn session_rejects_bad_values() {
        let c = SessionConfig {
            token_hold: Duration::ZERO,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let base = SessionConfig::default();
        let c = SessionConfig {
            hungry_timeout: base.token_hold,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = SessionConfig {
            max_payload: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = SessionConfig {
            max_attached: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn bulk_dials_validate_only_when_enabled() {
        // Disabled (threshold 0): the other bulk dials may be anything.
        let c = SessionConfig {
            bulk_threshold: 0,
            bulk_pull_timeout: Duration::ZERO,
            bulk_cache_entries: 0,
            ..Default::default()
        };
        c.validate().unwrap();
        // Enabled: pull timeout and cache bound must be positive.
        let c = SessionConfig {
            bulk_threshold: 512,
            bulk_pull_timeout: Duration::ZERO,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = SessionConfig {
            bulk_threshold: 512,
            bulk_cache_entries: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = SessionConfig {
            bulk_threshold: 512,
            ..Default::default()
        };
        c.validate().unwrap();
    }

    #[test]
    fn for_cluster_fills_eligible() {
        let c = SessionConfig::for_cluster(4);
        assert_eq!(c.eligible, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn token_rate_math() {
        // 4 nodes, 10 rounds/sec → 100 ms per round → 25 ms hold per node.
        let c = SessionConfig::for_cluster(4).with_token_rate(4, 10.0);
        assert_eq!(c.token_hold, Duration::from_millis(25));
    }
}
