//! Compact binary wire codec.
//!
//! Every Raincore datagram — transport frames, tokens, 911 calls, beacons —
//! is encoded with this codec before it is handed to the (simulated or
//! real) network. The format is deliberately simple:
//!
//! * unsigned integers as LEB128 varints,
//! * byte strings and sequences length-prefixed with a varint,
//! * enums as a one-byte tag followed by the variant fields.
//!
//! Decoding is fully length-checked and returns [`WireError`] on truncated
//! or malformed input; it never panics and the crate forbids `unsafe`.
//! Round-tripping of all message types is property-tested.

use bytes::{BufMut, Bytes, BytesMut};
use core::fmt;

/// Error produced when decoding malformed or truncated wire data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the value was complete.
    Truncated,
    /// A varint exceeded 64 bits.
    VarintOverflow,
    /// An enum tag byte did not match any known variant.
    BadTag {
        /// The type being decoded.
        ty: &'static str,
        /// The offending tag value.
        tag: u8,
    },
    /// A declared length prefix was implausibly large for the remaining input.
    BadLength {
        /// Declared element count or byte length.
        declared: u64,
        /// Bytes actually remaining in the buffer.
        remaining: usize,
    },
    /// Trailing bytes remained after a complete message was decoded.
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire data truncated"),
            WireError::VarintOverflow => write!(f, "varint exceeds 64 bits"),
            WireError::BadTag { ty, tag } => write!(f, "unknown tag {tag} for {ty}"),
            WireError::BadLength {
                declared,
                remaining,
            } => {
                write!(
                    f,
                    "declared length {declared} exceeds remaining {remaining} bytes"
                )
            }
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
        }
    }
}

impl std::error::Error for WireError {}

/// Result alias for wire decoding.
pub type WireResult<T> = core::result::Result<T, WireError>;

/// Growable encode buffer (a thin wrapper over [`BytesMut`]).
#[derive(Default, Debug)]
pub struct Writer {
    buf: BytesMut,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        Writer {
            buf: BytesMut::with_capacity(cap),
        }
    }

    /// Appends a LEB128 varint.
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.put_u8(byte);
                return;
            }
            self.buf.put_u8(byte | 0x80);
        }
    }

    /// Appends a single raw byte (used for enum tags and booleans).
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Appends a boolean as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.put_u8(v as u8);
    }

    /// Appends a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_varint(v.len() as u64);
        self.buf.put_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Appends raw, already-encoded bytes (no length prefix). Used by the
    /// patch-per-hop token encoder to splice a cached body after a freshly
    /// written header.
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.put_slice(v);
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Clears the buffer for reuse, keeping its capacity. Together with
    /// [`Writer::snapshot`] this lets hot paths recycle one scratch buffer
    /// across encodes instead of allocating a fresh one per message.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Copies the current contents into an immutable buffer *without*
    /// consuming the writer: exactly one allocation, and the scratch
    /// capacity stays available for the next encode.
    pub fn snapshot(&self) -> Bytes {
        Bytes::copy_from_slice(&self.buf)
    }

    /// Finishes encoding and returns the immutable byte buffer.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Length-checked decode cursor over a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Returns an error if any bytes remain (call after decoding a full
    /// message to reject padded datagrams).
    pub fn expect_end(&self) -> WireResult<()> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes(self.buf.len()))
        }
    }

    /// Reads a LEB128 varint.
    pub fn get_varint(&mut self) -> WireResult<u64> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let &byte = self.buf.first().ok_or(WireError::Truncated)?;
            self.buf = &self.buf[1..];
            if shift >= 64 || (shift == 63 && byte > 1) {
                return Err(WireError::VarintOverflow);
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Reads one raw byte.
    pub fn get_u8(&mut self) -> WireResult<u8> {
        let &byte = self.buf.first().ok_or(WireError::Truncated)?;
        self.buf = &self.buf[1..];
        Ok(byte)
    }

    /// Reads a boolean byte; any nonzero value is `true`.
    pub fn get_bool(&mut self) -> WireResult<bool> {
        Ok(self.get_u8()? != 0)
    }

    /// Reads a length-prefixed byte string, copying it into a fresh buffer.
    pub fn get_bytes(&mut self) -> WireResult<Bytes> {
        let len = self.get_varint()?;
        if len > self.buf.len() as u64 {
            return Err(WireError::BadLength {
                declared: len,
                remaining: self.buf.len(),
            });
        }
        let (head, tail) = self.buf.split_at(len as usize);
        self.buf = tail;
        Ok(Bytes::copy_from_slice(head))
    }

    /// Reads a length-prefixed byte string, borrowing it from the input
    /// buffer. Used by allocation-sensitive consumers (the model checker's
    /// state fingerprint) that only need to *look at* the bytes.
    pub fn get_bytes_ref(&mut self) -> WireResult<&'a [u8]> {
        let len = self.get_varint()?;
        if len > self.buf.len() as u64 {
            return Err(WireError::BadLength {
                declared: len,
                remaining: self.buf.len(),
            });
        }
        let (head, tail) = self.buf.split_at(len as usize);
        self.buf = tail;
        Ok(head)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> WireResult<String> {
        let b = self.get_bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| WireError::BadTag { ty: "utf8", tag: 0 })
    }

    /// Reads a sequence length prefix, sanity-checking it against the
    /// remaining input (each element needs at least `min_elem_bytes`).
    pub fn get_seq_len(&mut self, min_elem_bytes: usize) -> WireResult<usize> {
        let len = self.get_varint()?;
        let need = len.saturating_mul(min_elem_bytes.max(1) as u64);
        if need > self.buf.len() as u64 {
            return Err(WireError::BadLength {
                declared: len,
                remaining: self.buf.len(),
            });
        }
        Ok(len as usize)
    }
}

/// Types that can be written to the wire.
pub trait WireEncode {
    /// Appends this value's encoding to `w`.
    fn encode(&self, w: &mut Writer);

    /// Convenience: encodes into a fresh buffer.
    fn encode_to_bytes(&self) -> Bytes {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.finish()
    }
}

/// Types that can be read back from the wire.
pub trait WireDecode: Sized {
    /// Decodes one value from `r`, advancing the cursor.
    fn decode(r: &mut Reader<'_>) -> WireResult<Self>;

    /// Convenience: decodes a value that must occupy the whole buffer.
    fn decode_from_bytes(buf: &[u8]) -> WireResult<Self> {
        let mut r = Reader::new(buf);
        let v = Self::decode(&mut r)?;
        r.expect_end()?;
        Ok(v)
    }
}

macro_rules! impl_wire_varint_newtype {
    ($ty:ty, $inner:ty) => {
        impl WireEncode for $ty {
            fn encode(&self, w: &mut Writer) {
                w.put_varint(self.0 as u64);
            }
        }
        impl WireDecode for $ty {
            fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
                Ok(Self(r.get_varint()? as $inner))
            }
        }
    };
}

impl_wire_varint_newtype!(crate::id::NodeId, u32);
impl_wire_varint_newtype!(crate::id::Incarnation, u32);
impl_wire_varint_newtype!(crate::id::MsgId, u64);
impl_wire_varint_newtype!(crate::id::OriginSeq, u64);
impl_wire_varint_newtype!(crate::id::VipId, u32);
impl_wire_varint_newtype!(crate::time::Time, u64);
impl_wire_varint_newtype!(crate::time::Duration, u64);

impl WireEncode for crate::id::GroupId {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
    }
}

impl WireDecode for crate::id::GroupId {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        Ok(crate::id::GroupId(crate::id::NodeId::decode(r)?))
    }
}

impl WireEncode for u64 {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(*self);
    }
}

impl WireDecode for u64 {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        r.get_varint()
    }
}

impl<T: WireEncode> WireEncode for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.len() as u64);
        for item in self {
            item.encode(w);
        }
    }
}

impl<T: WireDecode> WireDecode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        let len = r.get_seq_len(1)?;
        let mut out = Vec::with_capacity(len.min(4096));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl WireEncode for Bytes {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(self);
    }
}

impl WireDecode for Bytes {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        r.get_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn varint_small_values_one_byte() {
        for v in 0..128u64 {
            let mut w = Writer::new();
            w.put_varint(v);
            assert_eq!(w.len(), 1);
        }
    }

    #[test]
    fn varint_boundaries() {
        for &v in &[0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut w = Writer::new();
            w.put_varint(v);
            let buf = w.finish();
            let mut r = Reader::new(&buf);
            assert_eq!(r.get_varint().unwrap(), v);
            r.expect_end().unwrap();
        }
    }

    #[test]
    fn varint_truncated_is_error() {
        let mut w = Writer::new();
        w.put_varint(u64::MAX);
        let buf = w.finish();
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            assert_eq!(r.get_varint(), Err(WireError::Truncated), "cut at {cut}");
        }
    }

    #[test]
    fn varint_overflow_is_error() {
        // Eleven continuation bytes encode more than 64 bits.
        let buf = [0xffu8; 11];
        let mut r = Reader::new(&buf);
        assert_eq!(r.get_varint(), Err(WireError::VarintOverflow));
    }

    #[test]
    fn bytes_round_trip_and_bad_length() {
        let mut w = Writer::new();
        w.put_bytes(b"hello");
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(&r.get_bytes().unwrap()[..], b"hello");

        // Length prefix claiming more than available must fail.
        let mut w = Writer::new();
        w.put_varint(100);
        w.put_u8(1);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert!(matches!(
            r.get_bytes(),
            Err(WireError::BadLength { declared: 100, .. })
        ));
    }

    #[test]
    fn string_round_trip_and_invalid_utf8() {
        let mut w = Writer::new();
        w.put_str("héllo");
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.get_str().unwrap(), "héllo");

        let mut w = Writer::new();
        w.put_bytes(&[0xff, 0xfe]);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert!(r.get_str().is_err());
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = Writer::new();
        w.put_varint(1);
        w.put_u8(0);
        let buf = w.finish();
        assert_eq!(
            u64::decode_from_bytes(&buf),
            Err(WireError::TrailingBytes(1))
        );
    }

    #[test]
    fn vec_round_trip() {
        let v: Vec<u64> = vec![0, 1, u64::MAX];
        let buf = v.encode_to_bytes();
        assert_eq!(Vec::<u64>::decode_from_bytes(&buf).unwrap(), v);
    }

    #[test]
    fn seq_len_guard_rejects_absurd_counts() {
        let mut w = Writer::new();
        w.put_varint(1 << 40);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert!(matches!(r.get_seq_len(1), Err(WireError::BadLength { .. })));
    }

    proptest! {
        #[test]
        fn prop_varint_round_trip(v in any::<u64>()) {
            let mut w = Writer::new();
            w.put_varint(v);
            let buf = w.finish();
            let mut r = Reader::new(&buf);
            prop_assert_eq!(r.get_varint().unwrap(), v);
            prop_assert_eq!(r.remaining(), 0);
        }

        #[test]
        fn prop_bytes_round_trip(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            let mut w = Writer::new();
            w.put_bytes(&data);
            let buf = w.finish();
            let mut r = Reader::new(&buf);
            prop_assert_eq!(r.get_bytes().unwrap().to_vec(), data);
        }

        #[test]
        fn prop_decode_random_garbage_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            // Decoding arbitrary bytes as a Vec<u64> must fail cleanly or succeed,
            // never panic.
            let _ = Vec::<u64>::decode_from_bytes(&data);
        }

        #[test]
        fn prop_bool_round_trip(v in any::<bool>()) {
            let mut w = Writer::new();
            w.put_bool(v);
            let buf = w.finish();
            let mut r = Reader::new(&buf);
            prop_assert_eq!(r.get_bool().unwrap(), v);
        }
    }
}
