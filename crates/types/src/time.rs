//! Virtual time for the deterministic simulator and the real-time runtime.
//!
//! All protocol code is written against [`Time`] and [`Duration`] rather
//! than `std::time`, so the same state machines run unchanged under the
//! discrete-event simulator (where time is a counter the scheduler owns)
//! and under the threaded UDP runtime (where time is a monotonic clock
//! sampled at each event).
//!
//! Resolution is one nanosecond; a `u64` of nanoseconds covers ~584 years
//! of simulated time, far beyond any experiment in this repository.

use core::fmt;
use core::ops::{Add, AddAssign, Sub, SubAssign};

/// An instant on the (virtual or monotonic) timeline, in nanoseconds since
/// an arbitrary epoch (simulation start, or runtime start).
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Time(pub u64);

/// A span of time, in nanoseconds.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Duration(pub u64);

impl Time {
    /// The epoch (t = 0).
    pub const ZERO: Time = Time(0);

    /// Nanoseconds since the epoch.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`. Saturates to zero if `earlier`
    /// is in the future (can happen with jittery monotonic clocks).
    #[inline]
    pub fn since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    #[inline]
    pub fn checked_add(self, d: Duration) -> Option<Time> {
        self.0.checked_add(d.0).map(Time)
    }
}

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Constructs a duration from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Duration {
        Duration(ns)
    }

    /// Constructs a duration from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Duration {
        Duration(us * 1_000)
    }

    /// Constructs a duration from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Duration {
        Duration(ms * 1_000_000)
    }

    /// Constructs a duration from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Duration {
        Duration(s * 1_000_000_000)
    }

    /// Constructs a duration from fractional seconds (rounded to the
    /// nearest nanosecond, saturating at zero for negative inputs).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Duration {
        Duration((s.max(0.0) * 1e9).round() as u64)
    }

    /// Nanoseconds in this duration.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Milliseconds in this duration (truncated).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds in this duration, as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if this duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the duration by an integer factor (saturating).
    #[inline]
    pub const fn saturating_mul(self, k: u64) -> Duration {
        Duration(self.0.saturating_mul(k))
    }

    /// Divides the duration by an integer divisor (panics on zero divisor,
    /// like integer division).
    #[inline]
    pub const fn div(self, k: u64) -> Duration {
        Duration(self.0 / k)
    }

    /// Converts to a `std::time::Duration` (for the real-time runtime).
    #[inline]
    pub const fn to_std(self) -> std::time::Duration {
        std::time::Duration::from_nanos(self.0)
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Duration) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Duration) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Duration {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Duration::from_secs(1), Duration::from_millis(1000));
        assert_eq!(Duration::from_millis(1), Duration::from_micros(1000));
        assert_eq!(Duration::from_micros(1), Duration::from_nanos(1000));
        assert_eq!(Duration::from_secs_f64(0.5), Duration::from_millis(500));
    }

    #[test]
    fn arithmetic() {
        let t = Time::ZERO + Duration::from_secs(2);
        assert_eq!(t.as_nanos(), 2_000_000_000);
        assert_eq!(t.since(Time::ZERO), Duration::from_secs(2));
        assert_eq!(Time::ZERO.since(t), Duration::ZERO); // saturating
        assert_eq!(t - Duration::from_secs(1), Time(1_000_000_000));
        let mut d = Duration::from_secs(1);
        d += Duration::from_secs(1);
        assert_eq!(d, Duration::from_secs(2));
        d -= Duration::from_secs(3);
        assert_eq!(d, Duration::ZERO);
    }

    #[test]
    fn scaling() {
        assert_eq!(
            Duration::from_secs(1).saturating_mul(3),
            Duration::from_secs(3)
        );
        assert_eq!(Duration::from_secs(3).div(3), Duration::from_secs(1));
        assert_eq!(Duration(u64::MAX).saturating_mul(2), Duration(u64::MAX));
    }

    #[test]
    fn float_round_trips() {
        let d = Duration::from_secs_f64(1.25);
        assert!((d.as_secs_f64() - 1.25).abs() < 1e-9);
        assert_eq!(Duration::from_secs_f64(-1.0), Duration::ZERO);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{:?}", Duration::from_secs(2)), "2.000s");
        assert_eq!(format!("{:?}", Duration::from_millis(2)), "2.000ms");
        assert_eq!(format!("{:?}", Duration::from_micros(2)), "2.000us");
        assert_eq!(format!("{:?}", Duration::from_nanos(2)), "2ns");
    }

    #[test]
    fn checked_add_overflow() {
        assert_eq!(Time(u64::MAX).checked_add(Duration(1)), None);
        assert_eq!(Time(1).checked_add(Duration(2)), Some(Time(3)));
    }

    #[test]
    fn std_conversion() {
        assert_eq!(
            Duration::from_millis(5).to_std(),
            std::time::Duration::from_millis(5)
        );
    }
}
