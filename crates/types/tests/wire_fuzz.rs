//! Deterministic seeded fuzzing of the wire codec.
//!
//! Unlike the proptest suites in `src/`, these tests are exactly
//! reproducible from a fixed seed (no persisted regression files, no
//! shrinking): every CI run explores the same inputs, so a failure here
//! is a failure everywhere. Three attack surfaces:
//!
//! 1. random garbage decoded as every message type must return
//!    `Err`/`Ok`, never panic;
//! 2. valid encodings with seeded byte mutations (flips, truncations,
//!    extensions) must decode without panicking;
//! 3. randomized instances of every [`SessionMsg`] variant must
//!    round-trip encode→decode exactly.

use bytes::Bytes;
use raincore_types::messages::{
    Attached, BodyOdor, Call911, DeliveryMode, OpenSubmit, Reply911, SessionMsg, Token, Verdict911,
};
use raincore_types::wire::{WireDecode, WireEncode};
use raincore_types::{GroupId, NodeId, OriginSeq, Ring};

/// Minimal xorshift64* PRNG: deterministic, dependency-free, good enough
/// for byte fuzzing.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }

    fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.next() as u8).collect()
    }
}

fn arb_ring(rng: &mut Rng) -> Ring {
    let n = rng.below(8) as usize;
    Ring::from_iter((0..n).map(|_| NodeId(rng.below(64) as u32)))
}

fn arb_attached(rng: &mut Rng) -> Attached {
    Attached {
        origin: NodeId(rng.below(100) as u32),
        seq: OriginSeq(rng.below(100_000)),
        mode: if rng.below(2) == 0 {
            DeliveryMode::Agreed
        } else {
            DeliveryMode::Safe
        },
        seen: (0..rng.below(6))
            .map(|_| NodeId(rng.below(64) as u32))
            .collect(),
        confirmed: (0..rng.below(6))
            .map(|_| NodeId(rng.below(64) as u32))
            .collect(),
        payload: {
            let n = rng.below(128) as usize;
            Bytes::from(rng.bytes(n))
        },
    }
}

fn arb_msg(rng: &mut Rng) -> SessionMsg {
    match rng.below(6) {
        0 => SessionMsg::Token(Token {
            seq: rng.next(),
            ring: arb_ring(rng),
            tbm: rng.below(2) == 0,
            msgs: (0..rng.below(5)).map(|_| arb_attached(rng)).collect(),
        }),
        1 => SessionMsg::Call911(Call911 {
            from: NodeId(rng.below(64) as u32),
            last_token_seq: rng.next(),
            req_id: rng.next(),
        }),
        2 => SessionMsg::Reply911(Reply911 {
            from: NodeId(rng.below(64) as u32),
            req_id: rng.next(),
            verdict: Verdict911::Grant,
        }),
        3 => SessionMsg::Reply911(Reply911 {
            from: NodeId(rng.below(64) as u32),
            req_id: rng.next(),
            verdict: Verdict911::Deny {
                newer_seq: rng.next(),
            },
        }),
        4 => SessionMsg::BodyOdor(BodyOdor {
            from: NodeId(rng.below(64) as u32),
            group: GroupId(NodeId(rng.below(64) as u32)),
        }),
        _ => SessionMsg::Open(OpenSubmit {
            from: NodeId(rng.below(64) as u32),
            seq: OriginSeq(rng.below(100_000)),
            payload: {
                let n = rng.below(128) as usize;
                Bytes::from(rng.bytes(n))
            },
        }),
    }
}

#[test]
fn random_garbage_never_panics() {
    let mut rng = Rng::new(0xC0FFEE);
    for _ in 0..20_000 {
        let len = rng.below(256) as usize;
        let data = rng.bytes(len);
        let _ = SessionMsg::decode_from_bytes(&data);
        let _ = Token::decode_from_bytes(&data);
        let _ = Attached::decode_from_bytes(&data);
        let _ = Vec::<u64>::decode_from_bytes(&data);
    }
}

#[test]
fn mutated_valid_encodings_never_panic() {
    let mut rng = Rng::new(0xBADF00D);
    for _ in 0..5_000 {
        let msg = arb_msg(&mut rng);
        let mut buf = msg.encode_to_bytes().to_vec();
        match rng.below(3) {
            0 => {
                // Flip a few random bytes.
                for _ in 0..=rng.below(4) {
                    if !buf.is_empty() {
                        let at = rng.below(buf.len() as u64) as usize;
                        buf[at] ^= rng.next() as u8;
                    }
                }
            }
            1 => {
                // Truncate.
                let keep = rng.below(buf.len() as u64 + 1) as usize;
                buf.truncate(keep);
            }
            _ => {
                // Append trailing garbage.
                let n = 1 + rng.below(8) as usize;
                buf.extend(rng.bytes(n));
            }
        }
        let _ = SessionMsg::decode_from_bytes(&buf);
    }
}

#[test]
fn all_variants_round_trip() {
    let mut rng = Rng::new(0x5EED);
    let mut seen_tags = [false; 5];
    for _ in 0..5_000 {
        let msg = arb_msg(&mut rng);
        let tag = match &msg {
            SessionMsg::Token(_) => 0,
            SessionMsg::Call911(_) => 1,
            SessionMsg::Reply911(_) => 2,
            SessionMsg::BodyOdor(_) => 3,
            SessionMsg::Open(_) => 4,
        };
        seen_tags[tag] = true;
        let buf = msg.encode_to_bytes();
        let back = SessionMsg::decode_from_bytes(&buf).expect("valid encoding must decode");
        assert_eq!(back, msg);
    }
    assert!(
        seen_tags.iter().all(|&s| s),
        "seeded generator must cover every SessionMsg variant: {seen_tags:?}"
    );
}
