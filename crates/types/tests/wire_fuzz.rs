//! Deterministic seeded fuzzing of the wire codec.
//!
//! Unlike the proptest suites in `src/`, these tests are exactly
//! reproducible from a fixed seed (no persisted regression files, no
//! shrinking): every CI run explores the same inputs, so a failure here
//! is a failure everywhere. Three attack surfaces:
//!
//! 1. random garbage decoded as every message type must return
//!    `Err`/`Ok`, never panic;
//! 2. valid encodings with seeded byte mutations (flips, truncations,
//!    extensions) must decode without panicking;
//! 3. randomized instances of every [`SessionMsg`] variant must
//!    round-trip encode→decode exactly.

use bytes::Bytes;
use raincore_types::messages::{
    Attached, AttachedBody, BodyOdor, BulkData, BulkNack, Call911, DeliveryMode, OpenSubmit,
    Reply911, SessionMsg, Token, TraceCtx, Verdict911,
};
use raincore_types::wire::{WireDecode, WireEncode};
use raincore_types::{GroupId, NodeId, OriginSeq, Ring, TokenEncoder};

/// Minimal xorshift64* PRNG: deterministic, dependency-free, good enough
/// for byte fuzzing.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }

    fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.next() as u8).collect()
    }
}

fn arb_ring(rng: &mut Rng) -> Ring {
    let n = rng.below(8) as usize;
    Ring::from_iter((0..n).map(|_| NodeId(rng.below(64) as u32)))
}

fn arb_attached(rng: &mut Rng) -> Attached {
    Attached {
        origin: NodeId(rng.below(100) as u32),
        seq: OriginSeq(rng.below(100_000)),
        mode: if rng.below(2) == 0 {
            DeliveryMode::Agreed
        } else {
            DeliveryMode::Safe
        },
        seen: (0..rng.below(6))
            .map(|_| NodeId(rng.below(64) as u32))
            .collect(),
        confirmed: (0..rng.below(6))
            .map(|_| NodeId(rng.below(64) as u32))
            .collect(),
        body: if rng.below(4) == 0 {
            // Out-of-band manifest entry: the token carries only the id
            // and expected payload length.
            AttachedBody::Oob {
                len: rng.below(1 << 20),
            }
        } else {
            let n = rng.below(128) as usize;
            AttachedBody::Inline(Bytes::from(rng.bytes(n)))
        },
    }
}

fn arb_msg(rng: &mut Rng) -> SessionMsg {
    match rng.below(8) {
        0 => SessionMsg::Token(Token {
            seq: rng.next(),
            trace: TraceCtx::mint(NodeId(rng.below(64) as u32), rng.next(), rng.next()),
            ring: arb_ring(rng),
            tbm: rng.below(2) == 0,
            msgs: (0..rng.below(5)).map(|_| arb_attached(rng)).collect(),
        }),
        1 => SessionMsg::Call911(Call911 {
            from: NodeId(rng.below(64) as u32),
            last_token_seq: rng.next(),
            req_id: rng.next(),
        }),
        2 => SessionMsg::Reply911(Reply911 {
            from: NodeId(rng.below(64) as u32),
            req_id: rng.next(),
            verdict: Verdict911::Grant,
        }),
        3 => SessionMsg::Reply911(Reply911 {
            from: NodeId(rng.below(64) as u32),
            req_id: rng.next(),
            verdict: Verdict911::Deny {
                newer_seq: rng.next(),
            },
        }),
        4 => SessionMsg::BodyOdor(BodyOdor {
            from: NodeId(rng.below(64) as u32),
            group: GroupId(NodeId(rng.below(64) as u32)),
        }),
        5 => SessionMsg::Open(OpenSubmit {
            from: NodeId(rng.below(64) as u32),
            seq: OriginSeq(rng.below(100_000)),
            payload: {
                let n = rng.below(128) as usize;
                Bytes::from(rng.bytes(n))
            },
        }),
        6 => SessionMsg::Bulk(BulkData {
            origin: NodeId(rng.below(64) as u32),
            seq: OriginSeq(rng.below(100_000)),
            payload: {
                let n = rng.below(2048) as usize;
                Bytes::from(rng.bytes(n))
            },
        }),
        _ => SessionMsg::BulkNack(BulkNack {
            from: NodeId(rng.below(64) as u32),
            origin: NodeId(rng.below(64) as u32),
            seq: OriginSeq(rng.below(100_000)),
        }),
    }
}

#[test]
fn random_garbage_never_panics() {
    let mut rng = Rng::new(0xC0FFEE);
    for _ in 0..20_000 {
        let len = rng.below(256) as usize;
        let data = rng.bytes(len);
        let _ = SessionMsg::decode_from_bytes(&data);
        let _ = Token::decode_from_bytes(&data);
        let _ = Attached::decode_from_bytes(&data);
        let _ = Vec::<u64>::decode_from_bytes(&data);
    }
}

#[test]
fn mutated_valid_encodings_never_panic() {
    let mut rng = Rng::new(0xBADF00D);
    for _ in 0..5_000 {
        let msg = arb_msg(&mut rng);
        let mut buf = msg.encode_to_bytes().to_vec();
        match rng.below(3) {
            0 => {
                // Flip a few random bytes.
                for _ in 0..=rng.below(4) {
                    if !buf.is_empty() {
                        let at = rng.below(buf.len() as u64) as usize;
                        buf[at] ^= rng.next() as u8;
                    }
                }
            }
            1 => {
                // Truncate.
                let keep = rng.below(buf.len() as u64 + 1) as usize;
                buf.truncate(keep);
            }
            _ => {
                // Append trailing garbage.
                let n = 1 + rng.below(8) as usize;
                buf.extend(rng.bytes(n));
            }
        }
        let _ = SessionMsg::decode_from_bytes(&buf);
    }
}

/// The patch-per-hop [`TokenEncoder`] must be byte-identical to a fresh
/// full encode at every step of a long mutation walk: seq bumps
/// (cache-hit regime), membership joins/leaves, tbm flips, messages
/// boarding and retiring, and CoW clones standing in for `last_copy`
/// snapshots. One persistent encoder across the whole walk, so every
/// cache transition (cold→primed→hit→invalidated→re-primed) is covered.
#[test]
fn patched_header_encode_matches_full_reencode() {
    let mut rng = Rng::new(0x70_4B_3E);
    let mut enc = TokenEncoder::new();
    let mut token = Token::founding(arb_ring(&mut rng));
    let mut hits_possible = 0u64;
    for step in 0..5_000 {
        match rng.below(11) {
            // Steady state dominates: most hops bump seq and the trace
            // hop counter together — the whole mutable header changes
            // while the body stays cached.
            0..=5 => {
                token.seq = token.seq.wrapping_add(1 + rng.below(3));
                token.trace.hop = token.trace.hop.wrapping_add(1 + rng.below(3));
            }
            6 => {
                token.ring.push(NodeId(rng.below(64) as u32));
            }
            7 => {
                let id = NodeId(rng.below(64) as u32);
                token.ring.remove(id);
            }
            8 => token.tbm = !token.tbm,
            9 => {
                // Regeneration/merge mints a fresh circulation: every
                // trace-context varint changes width-unpredictably.
                token.trace =
                    TraceCtx::mint(NodeId(rng.below(64) as u32), rng.next(), token.trace.hop);
            }
            _ => {
                if token.msgs.is_empty() || rng.below(2) == 0 {
                    token.msgs.push(arb_attached(&mut rng));
                } else {
                    token.msgs = Default::default();
                }
            }
        }
        // A CoW snapshot, as `SessionNode` takes for `last_copy`. Dropped
        // or mutated later, it must never disturb the encoder's view.
        let snapshot = token.clone();
        if rng.below(4) == 0 {
            let mut fork = snapshot.clone();
            fork.ring.push(NodeId(99));
            fork.msgs.push(arb_attached(&mut rng));
        }
        if token.msgs.is_empty() {
            hits_possible += 1;
        }
        let patched = enc.encode(&token);
        let full = SessionMsg::Token(token.clone()).encode_to_bytes();
        assert_eq!(patched[..], full[..], "divergence at step {step}");
        let decoded = SessionMsg::decode_from_bytes(&patched).expect("decodes");
        assert_eq!(decoded, SessionMsg::Token(snapshot));
    }
    assert!(
        enc.cache_hits() > hits_possible / 2,
        "the walk must actually exercise the cache-hit path: {} hits of {} quiescent encodes",
        enc.cache_hits(),
        hits_possible
    );
    assert!(enc.cache_misses() > 100, "and the invalidation paths");
}

#[test]
fn all_variants_round_trip() {
    let mut rng = Rng::new(0x5EED);
    let mut seen_tags = [false; 7];
    for _ in 0..5_000 {
        let msg = arb_msg(&mut rng);
        let tag = match &msg {
            SessionMsg::Token(_) => 0,
            SessionMsg::Call911(_) => 1,
            SessionMsg::Reply911(_) => 2,
            SessionMsg::BodyOdor(_) => 3,
            SessionMsg::Open(_) => 4,
            SessionMsg::Bulk(_) => 5,
            SessionMsg::BulkNack(_) => 6,
        };
        seen_tags[tag] = true;
        let buf = msg.encode_to_bytes();
        let back = SessionMsg::decode_from_bytes(&buf).expect("valid encoding must decode");
        assert_eq!(back, msg);
    }
    assert!(
        seen_tags.iter().all(|&s| s),
        "seeded generator must cover every SessionMsg variant: {seen_tags:?}"
    );
}

/// Manifest-token ↔ piggyback-token equivalence at the delivery layer:
/// a payload shipped as an `Oob` manifest entry plus its out-of-band
/// [`BulkData`] frame must, after a wire round trip of both parts,
/// reassemble to exactly the `(key, mode, payload)` triple the inline
/// piggyback encoding of the same multicast delivers — while the
/// manifest wire image stays payload-free. Seeded walk over sizes,
/// modes and watermark states.
#[test]
fn manifest_round_trip_matches_piggyback_at_delivery() {
    let mut rng = Rng::new(0x0B_1D5);
    for step in 0..2_000 {
        let origin = NodeId(rng.below(64) as u32);
        let seq = OriginSeq(rng.below(100_000));
        let mode = if rng.below(2) == 0 {
            DeliveryMode::Agreed
        } else {
            DeliveryMode::Safe
        };
        let payload_len = rng.below(4096) as usize;
        let payload = Bytes::from(rng.bytes(payload_len));

        let mut inline = Attached::new(origin, seq, mode, payload.clone());
        let mut manifest = Attached::new_oob(origin, seq, mode, payload.len() as u64);
        // Watermark churn must not disturb the equivalence.
        for _ in 0..rng.below(4) {
            let n = NodeId(rng.below(64) as u32);
            inline.mark_seen(n);
            manifest.mark_seen(n);
            if mode == DeliveryMode::Safe {
                inline.mark_confirmed(n);
                manifest.mark_confirmed(n);
            }
        }

        let inline_wire = inline.encode_to_bytes();
        let manifest_wire = manifest.encode_to_bytes();
        let bulk_wire = SessionMsg::Bulk(BulkData {
            origin,
            seq,
            payload: payload.clone(),
        })
        .encode_to_bytes();

        let inline_back = Attached::decode_from_bytes(&inline_wire).expect("inline decodes");
        let manifest_back = Attached::decode_from_bytes(&manifest_wire).expect("manifest decodes");
        let SessionMsg::Bulk(bulk_back) = SessionMsg::decode_from_bytes(&bulk_wire).expect("bulk")
        else {
            panic!("bulk frame decoded to a different variant at step {step}");
        };

        // Same ordered id, same mode, same watermark on both paths.
        assert_eq!(manifest_back.key(), inline_back.key());
        assert_eq!(manifest_back.mode, inline_back.mode);
        assert_eq!(manifest_back.seen, inline_back.seen);
        assert_eq!(manifest_back.confirmed, inline_back.confirmed);
        // Delivery-layer payload: inline carries it, manifest + bulk
        // frame reassemble it.
        assert_eq!((bulk_back.origin, bulk_back.seq), manifest_back.key());
        assert_eq!(
            bulk_back.payload,
            inline_back
                .inline_payload()
                .expect("piggyback is inline")
                .clone()
        );
        assert_eq!(manifest_back.payload_len(), bulk_back.payload.len());
        assert!(manifest_back.inline_payload().is_none());
        // The manifest never smuggles the payload onto the token.
        if payload.len() > 64 {
            assert!(
                manifest_wire.len() < inline_wire.len(),
                "manifest must be smaller than piggyback at step {step}"
            );
        }
    }
}
