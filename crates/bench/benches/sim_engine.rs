//! Simulator substrate benchmarks: the network event queue and the ring
//! container — everything else's cost floor.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use raincore_net::{Addr, Datagram, SimNet, SimNetConfig};
use raincore_types::{Duration, NodeId, Ring, Time};
use std::hint::black_box;

fn bench_simnet(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_engine/simnet");
    const PKTS: u64 = 10_000;
    g.throughput(Throughput::Elements(PKTS));
    g.bench_function("send_pop_10k", |b| {
        b.iter(|| {
            let mut net = SimNet::new(SimNetConfig {
                bandwidth_bps: 100_000_000,
                ..Default::default()
            });
            for i in 0..PKTS {
                let d = Datagram::data(
                    Addr::primary(NodeId((i % 8) as u32)),
                    Addr::primary(NodeId(((i + 1) % 8) as u32)),
                    Bytes::from_static(&[0u8; 64]),
                );
                net.send(Time::ZERO + Duration::from_nanos(i), d);
            }
            black_box(net.pop_arrivals(Time::ZERO + Duration::from_secs(10)).len())
        })
    });
    g.finish();
}

fn bench_ring(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_engine/ring");
    let ring = Ring::from_iter((0..64).map(NodeId));
    g.bench_function("next_after_64", |b| {
        b.iter(|| {
            let mut cur = NodeId(0);
            for _ in 0..64 {
                cur = black_box(ring.next_after(cur).unwrap());
            }
            cur
        })
    });
    g.bench_function("merge_64_64", |b| {
        let other = Ring::from_iter((32..96).map(NodeId));
        b.iter(|| {
            let mut r = ring.clone();
            r.merge(&other);
            black_box(r.len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_simnet, bench_ring);
criterion_main!(benches);
