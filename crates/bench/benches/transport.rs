//! Transport-layer benchmark: reliable send → ack → delivered, including
//! fragmentation of large messages.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use raincore_net::{Addr, SimNet, SimNetConfig};
use raincore_transport::{Endpoint, PeerTable};
use raincore_types::{Incarnation, NodeId, Time, TransportConfig};
use std::hint::black_box;

fn pump_one_message(size: usize) -> u64 {
    let peers = PeerTable::full_mesh([NodeId(0), NodeId(1)], 1);
    let mk = |id: u32| {
        Endpoint::new(
            NodeId(id),
            Incarnation::FIRST,
            vec![Addr::primary(NodeId(id))],
            peers.clone(),
            TransportConfig::default(),
        )
        .unwrap()
    };
    let (mut a, mut b) = (mk(0), mk(1));
    let mut net = SimNet::new(SimNetConfig::default());
    let mut now = Time::ZERO;
    a.send(now, NodeId(1), Bytes::from(vec![0u8; size]))
        .unwrap();
    loop {
        let mut moved = false;
        for ep in [&mut a, &mut b] {
            while let Some(d) = ep.poll_outgoing() {
                net.send(now, d);
                moved = true;
            }
        }
        let arrivals = net.pop_arrivals(now);
        let had = !arrivals.is_empty();
        for d in arrivals {
            if d.dst.node == NodeId(0) {
                a.on_datagram(now, d);
            } else {
                b.on_datagram(now, d);
            }
        }
        if moved || had {
            continue;
        }
        match net.next_arrival() {
            Some(t) => now = t,
            None => break,
        }
    }
    b.stats().msgs_received
}

fn bench_transport(c: &mut Criterion) {
    let mut g = c.benchmark_group("transport/send_ack_deliver");
    for size in [64usize, 1400, 16 * 1024, 64 * 1024] {
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &s| {
            b.iter(|| black_box(pump_one_message(s)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_transport);
criterion_main!(benches);
