//! Distributed-lock-manager benchmark: replicated lock-table op
//! throughput (the pure state machine every member runs on delivery).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use raincore_dlm::{LockManager, LockOp};
use raincore_types::NodeId;
use std::hint::black_box;

fn bench_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("dlm/lock_table");
    let names: Vec<String> = (0..32).map(|i| format!("lock-{i}")).collect();
    // Pre-encoded contended sequence: 3 nodes ping-ponging 32 locks.
    let ops: Vec<LockOp> = (0..1024)
        .flat_map(|k| {
            let lock = names[k % names.len()].clone();
            let node = NodeId((k % 3) as u32);
            [
                LockOp::Acquire {
                    lock: lock.clone(),
                    node,
                },
                LockOp::Release { lock, node },
            ]
        })
        .collect();
    g.throughput(Throughput::Elements(ops.len() as u64));
    g.bench_function("apply_2048_ops", |b| {
        b.iter(|| {
            let mut lm = LockManager::new(NodeId(0));
            for op in &ops {
                lm.apply(&raincore_session::SessionEvent::Delivery(
                    raincore_session::Delivery {
                        origin: op.node(),
                        seq: raincore_types::OriginSeq(0),
                        mode: raincore_types::DeliveryMode::Agreed,
                        payload: op.to_payload(),
                    },
                ));
                while lm.poll_event().is_some() {}
            }
            black_box(lm.stats())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
