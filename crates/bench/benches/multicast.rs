//! Group-communication comparison: wall-clock cost of fully delivering
//! 100 multicasts (all-to-all) under Raincore vs the broadcast baselines.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use raincore_broadcast::{BroadcastCluster, Mode};
use raincore_net::SimNetConfig;
use raincore_sim::{Cluster, ClusterConfig};
use raincore_types::{DeliveryMode, Duration, NodeId, SessionConfig};
use std::hint::black_box;

const N: u32 = 4;
const MSGS: u32 = 100;

fn raincore_run() -> usize {
    let cfg = ClusterConfig {
        session: SessionConfig::for_cluster(N).with_token_rate(N, 100.0),
        ..Default::default()
    };
    let mut c = Cluster::founding(N, cfg).unwrap();
    c.run_for(Duration::from_millis(100));
    for k in 0..MSGS {
        c.multicast(
            NodeId(k % N),
            DeliveryMode::Agreed,
            Bytes::from(vec![k as u8; 64]),
        )
        .unwrap();
    }
    c.run_for(Duration::from_secs(2));
    c.deliveries(NodeId(0)).len()
}

fn baseline_run(mode: Mode) -> usize {
    let mut c = BroadcastCluster::new(N, mode, SimNetConfig::default(), Duration::from_millis(20));
    for k in 0..MSGS {
        c.multicast(NodeId(k % N), Bytes::from(vec![k as u8; 64]));
    }
    c.run_for(Duration::from_secs(2));
    c.deliveries(NodeId(0)).len()
}

fn bench_multicast(c: &mut Criterion) {
    let mut g = c.benchmark_group("multicast/deliver_100_msgs_4_nodes");
    g.sample_size(10);
    g.bench_function("raincore_token", |b| b.iter(|| black_box(raincore_run())));
    for (label, mode) in [
        ("fanout_unreliable", Mode::Unreliable),
        ("fanout_acked", Mode::Reliable),
        ("sequencer_2pc", Mode::Sequenced),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &mode, |b, &m| {
            b.iter(|| black_box(baseline_run(m)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_multicast);
criterion_main!(benches);
