//! Wire-codec micro-benchmarks: encode/decode throughput for the token
//! (the hottest message: it crosses the wire L·N times per second) and
//! the transport frame.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use raincore_transport::Frame;
use raincore_types::wire::{WireDecode, WireEncode};
use raincore_types::{
    Attached, DeliveryMode, Incarnation, MsgId, NodeId, OriginSeq, Ring, SessionMsg, Token,
};
use std::hint::black_box;

fn make_token(members: u32, msgs: usize, payload: usize) -> Token {
    let mut t = Token::founding(Ring::from_iter((0..members).map(NodeId)));
    t.seq = 123_456;
    for i in 0..msgs {
        let mut a = Attached::new(
            NodeId((i as u32) % members),
            OriginSeq(i as u64),
            DeliveryMode::Agreed,
            Bytes::from(vec![0u8; payload]),
        );
        for m in 0..members / 2 {
            a.mark_seen(NodeId(m));
        }
        t.msgs.push(a);
    }
    t
}

fn bench_token(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec/token");
    for (members, msgs, payload) in [(4u32, 0usize, 0usize), (4, 4, 256), (16, 16, 1024)] {
        let token = make_token(members, msgs, payload);
        let encoded = SessionMsg::Token(token.clone()).encode_to_bytes();
        g.throughput(Throughput::Bytes(encoded.len() as u64));
        g.bench_with_input(
            BenchmarkId::new("encode", format!("n{members}_m{msgs}_p{payload}")),
            &token,
            |b, t| b.iter(|| black_box(SessionMsg::Token(t.clone()).encode_to_bytes())),
        );
        g.bench_with_input(
            BenchmarkId::new("decode", format!("n{members}_m{msgs}_p{payload}")),
            &encoded,
            |b, buf| b.iter(|| black_box(SessionMsg::decode_from_bytes(buf).unwrap())),
        );
    }
    g.finish();
}

fn bench_frame(c: &mut Criterion) {
    let frame = Frame::Data {
        from: NodeId(3),
        inc: Incarnation(1),
        msg_id: MsgId(42),
        frag_index: 0,
        frag_count: 1,
        payload: Bytes::from(vec![7u8; 1024]),
    };
    let encoded = frame.encode_to_bytes();
    let mut g = c.benchmark_group("codec/frame");
    g.throughput(Throughput::Bytes(encoded.len() as u64));
    g.bench_function("encode_1k", |b| {
        b.iter(|| black_box(frame.encode_to_bytes()))
    });
    g.bench_function("decode_1k", |b| {
        b.iter(|| black_box(Frame::decode_from_bytes(&encoded).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_token, bench_frame);
criterion_main!(benches);
