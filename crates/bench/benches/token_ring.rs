//! Whole-protocol benchmark: wall-clock cost of simulating one virtual
//! second of a quiet token ring, by cluster size. This is the sim-engine
//! + session-stack hot path (token receive → copy → forward).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use raincore_sim::{Cluster, ClusterConfig};
use raincore_types::{Duration, NodeId, SessionConfig};
use std::hint::black_box;

fn cfg(n: u32) -> ClusterConfig {
    ClusterConfig {
        session: SessionConfig::for_cluster(n).with_token_rate(n, 20.0),
        ..Default::default()
    }
}

fn bench_ring(c: &mut Criterion) {
    let mut g = c.benchmark_group("token_ring/one_virtual_second");
    g.sample_size(10);
    for n in [2u32, 4, 8, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut cluster = Cluster::founding(n, cfg(n)).unwrap();
                cluster.run_for(Duration::from_secs(1));
                black_box(cluster.metrics(NodeId(0)).tokens_received)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ring);
criterion_main!(benches);
