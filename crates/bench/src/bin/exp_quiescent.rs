//! E6 — §2.5 quiescent-period membership agreement.
//!
//! Paper: "It is then possible to show that the agreement on group
//! membership can be achieved during the Quiescent Period which lasts
//! long enough" — given the token's uniqueness and everlastingness, one
//! quiet token round copies the authoritative membership to everyone.
//! This experiment measures how long that quiet period needs to be, for
//! increasingly violent disturbances (simultaneous crash bursts, then a
//! simultaneous rejoin of all victims).
//!
//! Usage: `exp_quiescent [n]` (default 8 members).

use raincore_bench::experiments::quiescent;
use raincore_bench::report::Table;

fn main() {
    let n: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    println!("E6: membership agreement time after disturbance bursts (N = {n})\n");
    let mut t = Table::new([
        "simultaneous crashes",
        "shrink convergence",
        "rejoin convergence (all victims)",
    ]);
    let fmt = |d: Option<raincore_types::Duration>| {
        d.map(|d| format!("{:.0} ms", d.as_secs_f64() * 1e3))
            .unwrap_or_else(|| "did not converge".into())
    };
    for k in 1..=(n / 2) {
        let r = quiescent(n, k);
        t.row([
            k.to_string(),
            fmt(r.shrink_convergence),
            fmt(r.rejoin_convergence),
        ]);
        eprintln!("  done k={k}");
    }
    t.print();
    println!("\nConvergence needs one failure detection per dead successor plus one");
    println!("quiet token round — §2.5's agreement argument, measured.");
}
