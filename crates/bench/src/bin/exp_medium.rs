//! E5 — §4.1 medium comparison: shared hub vs switched unicast.
//!
//! Paper: configuring the cluster as a broadcast medium means "no more
//! than 100 Mbps can travel through the cluster of N nodes in any
//! direction. In contrast, in a switched unicast Fast Ethernet
//! environment, the aggregate throughput of the cluster can reach
//! N × 100 Mbps" — the reason Raincore is unicast-based.
//!
//! Usage: `exp_medium [secs]` (default 6).

use raincore_bench::experiments::medium;
use raincore_bench::report::{f, Table};

fn main() {
    let secs: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    println!("E5: cluster goodput, switched vs shared (hub) Fast Ethernet\n");
    let rows = medium(&[1, 2, 4], secs);
    let mut t = Table::new([
        "nodes",
        "switch Mbit/s",
        "hub Mbit/s",
        "paper: switch",
        "paper: hub",
    ]);
    for r in &rows {
        t.row([
            r.gateways.to_string(),
            f(r.switch_mbps, 1),
            f(r.hub_mbps, 1),
            format!("≈ {} ×100", r.gateways),
            "≤ 100".to_string(),
        ]);
    }
    t.print();
    println!("\nThe hub caps the whole cluster at one NIC's rate; the switch scales");
    println!("with node count — the paper's case for unicast-based group communication.");
}
