//! E1 — §4.1 CPU task-switching comparison.
//!
//! Paper: with `N` devices each sending `M` messages/s and the token at
//! `L` roundtrips/s (`L < M`), Raincore needs only `L` task switches per
//! second per node; a broadcast-based protocol needs at least `M·N`; a
//! two-phase-commit ordered protocol up to `6·M·N`.
//!
//! Usage: `exp_taskswitch [secs]` (default 5 simulated seconds/cell).

use raincore_bench::experiments::taskswitch;
use raincore_bench::report::{f, Table};

fn main() {
    let secs: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    println!("E1: group-communication task switches per second per node");
    println!("    (paper §4.1: Raincore = L;  broadcast ≥ M·N;  2PC ordered ≤ 6·M·N)\n");
    let mut t = Table::new([
        "N",
        "M",
        "L",
        "raincore",
        "fanout+acks",
        "2PC(mean)",
        "2PC(max=seq'er)",
        "M*N",
        "6*M*N",
    ]);
    for &(n, m, l) in &[
        (2u32, 10u32, 5.0f64),
        (4, 10, 5.0),
        (8, 10, 5.0),
        (4, 50, 5.0),
        (4, 100, 10.0),
        (8, 100, 10.0),
        (16, 50, 10.0),
    ] {
        let r = taskswitch(n, m, l, secs);
        t.row([
            n.to_string(),
            m.to_string(),
            f(l, 0),
            f(r.raincore, 1),
            f(r.reliable, 1),
            f(r.sequenced_mean, 1),
            f(r.sequenced_max, 1),
            (m * n).to_string(),
            (6 * m * n).to_string(),
        ]);
        eprintln!("  done N={n} M={m} L={l}");
    }
    t.print();
    println!("\nRaincore wakes up ~L times/s regardless of message rate M, because");
    println!("messages piggyback on the token; the baselines wake up per message.");
}
