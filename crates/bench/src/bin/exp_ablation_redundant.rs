//! A3 — redundant-links ablation (§2.1).
//!
//! Paper: "The Transport Service allows each node to have multiple
//! physical addresses. This allows redundant links between the nodes in
//! the group, therefore makes the group more resilient to link failures
//! and less likely being partitioned."

use raincore_bench::experiments::redundant_links;
use raincore_bench::report::Table;

fn main() {
    println!("A3: unplug one NIC of a member — does membership churn?\n");
    let mut t = Table::new([
        "NICs/node",
        "membership changes (5 s)",
        "full membership kept",
    ]);
    for nics in [1u8, 2] {
        let r = redundant_links(nics);
        t.row([
            r.nics.to_string(),
            r.membership_changes.to_string(),
            r.full_membership.to_string(),
        ]);
    }
    t.print();
    println!("\nWith a second physical address the transport fails over between links");
    println!("and the failure never reaches the membership layer.");
}
