//! E4 — §3.2 fail-over time.
//!
//! Paper: "The fail-over time of Rainwall is under two seconds. … If a
//! network cable connecting one of the Rainwall firewalls is accidentally
//! unplugged, the client, instead of losing the connection, will only see
//! about a 2-second hick-up in the traffic flow, before it fully
//! resumes."

use raincore_bench::experiments::failover;
use raincore_bench::report::{f, hist_table, Table};

fn main() {
    println!("E4: cable unplug at t=5 s on one of two gateways\n");
    let r = failover();
    let mut t = Table::new(["t (s)", "client goodput (Mbit/s)"]);
    for (ts, mbps) in &r.series {
        let marker = if (*ts - r.unplug_at.as_secs_f64()).abs() < 1e-9 {
            "  <- unplug"
        } else {
            ""
        };
        t.row([format!("{ts:.1}{marker}"), f(*mbps, 1)]);
    }
    t.print();
    println!("\nLatency distributions (raincore-obs histograms):\n");
    hist_table([
        ("token rotation", r.rotation),
        ("failure-on-delivery", r.failover_latency),
        ("911 recovery", r.recovery),
    ])
    .print();
    println!(
        "\nTraffic gap: {:.2} s (paper: under 2 s); {} flows retried.",
        r.gap.as_secs_f64(),
        r.retries
    );
    assert!(
        r.gap.as_secs_f64() < 2.0,
        "fail-over exceeded the paper's bound"
    );
    println!("PASS: fail-over hiccup is under two seconds.");
}
