//! A1 — token-rate ablation: overhead vs multicast latency.
//!
//! The paper's design knob: the token travels "at a regular time
//! interval". A faster token (higher `L`) delivers multicasts sooner but
//! wakes every CPU more often — the trade-off behind "L task-switching
//! actions … per second".

use raincore_bench::experiments::latency_at_rate;
use raincore_bench::report::{f, Table};
use raincore_types::DeliveryMode;

fn main() {
    println!("A1: token rounds/s (L) vs agreed-multicast latency and CPU wake-ups\n");
    let mut t = Table::new(["L (rounds/s)", "latency (ms)", "task switches/s/node"]);
    for &l in &[1.0f64, 2.0, 5.0, 10.0, 25.0, 50.0] {
        let (lat, sw) = latency_at_rate(4, l, DeliveryMode::Agreed, 8);
        t.row([f(l, 0), f(lat * 1e3, 2), f(sw, 1)]);
        eprintln!("  done L={l}");
    }
    t.print();
    println!("\nLatency falls roughly as 1/L while the per-node wake-up rate grows");
    println!("as L — pick the token rate to match the freshness the cluster needs.");
}
