//! A2 — delivery-mode ablation: agreed vs safe ordering (§2.6).
//!
//! Paper: agreed (total) ordering costs nothing beyond the token itself;
//! safe delivery "requires that TOKEN travels one more round, to
//! guarantee the receipt by all members before … passing the message to
//! the upper layer."

use raincore_bench::experiments::latency_at_rate;
use raincore_bench::report::{f, Table};
use raincore_types::DeliveryMode;

fn main() {
    println!("A2: delivery latency at the originator's first successor\n");
    let mut t = Table::new(["L (rounds/s)", "agreed (ms)", "safe (ms)", "safe/agreed"]);
    for &l in &[5.0f64, 10.0, 25.0] {
        let (agreed, _) = latency_at_rate(4, l, DeliveryMode::Agreed, 8);
        let (safe, _) = latency_at_rate(4, l, DeliveryMode::Safe, 8);
        t.row([
            f(l, 0),
            f(agreed * 1e3, 2),
            f(safe * 1e3, 2),
            f(safe / agreed, 2),
        ]);
        eprintln!("  done L={l}");
    }
    t.print();
    println!("\nSafe delivery lags agreed delivery by about one extra token round,");
    println!("exactly the cost §2.6 predicts.");
}
