//! A5 — hierarchical scalability ablation (§5 future work).
//!
//! Paper: "we are currently working on the hierarchical design that
//! extends the scalability of the protocol." This experiment compares a
//! flat ring of N members against a G×K hierarchy with the same token
//! hold time: the flat ring's per-node wake-up rate and multicast
//! latency both degrade with N, while the hierarchy pins the per-member
//! cost to the leaf ring size K (leaders pay for two rings).
//!
//! Usage: `exp_ablation_hier [samples]` (default 6 latency samples/cell).

use raincore_bench::experiments::hier_vs_flat;
use raincore_bench::report::{f, Table};

fn main() {
    let samples: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    println!("A5: flat ring vs G×K hierarchy (token hold 2 ms everywhere)\n");
    let mut t = Table::new([
        "N",
        "shape",
        "flat lat (ms)",
        "hier lat (ms)",
        "flat sw/s/node",
        "hier sw/s/member",
        "hier sw/s/leader",
    ]);
    for &(g, k) in &[(2u32, 4u32), (4, 4), (4, 8), (8, 8)] {
        let r = hier_vs_flat(g, k, samples);
        t.row([
            r.n.to_string(),
            format!("{g}x{k}"),
            f(r.flat_latency * 1e3, 1),
            f(r.hier_latency * 1e3, 1),
            f(r.flat_switches, 1),
            f(r.hier_switches, 1),
            f(r.hier_leader_switches, 1),
        ]);
        eprintln!("  done {g}x{k}");
    }
    t.print();
    println!("\nFlat-ring latency grows linearly with N (one full circulation), and the");
    println!("only remedy — spinning the token faster — raises every node's wake-up");
    println!("rate. The hierarchy decouples the two: latency is leaf + top (≈K+G hops,");
    println!("growing as √N for square shapes) while a member's wake-up rate is pinned");
    println!("by its leaf ring size K; only the G leaders pay for two rings.");
}
