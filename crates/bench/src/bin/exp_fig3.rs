//! E3 — Figure 3: Rainwall throughput and scaling.
//!
//! Paper (Rainfinity lab, Sun Ultra-5 gateways, switched Fast Ethernet):
//! 95 Mbit/s at 1 node, 187 at 2 (×1.97), 357 at 4 (×3.76); Rainwall CPU
//! below 1 % throughout.
//!
//! Usage: `exp_fig3 [secs]` (default 8 simulated seconds of measurement).

use raincore_bench::experiments::fig3;
use raincore_bench::report::{f, hist_table, Table};

fn main() {
    let secs: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    println!("E3 (Figure 3): Rainwall cluster throughput, switched Fast Ethernet\n");
    let pts = fig3(&[1, 2, 4], secs);
    let paper = [(95.0, 1.0), (187.0, 1.97), (357.0, 3.76)];
    let mut t = Table::new([
        "nodes",
        "measured Mbit/s",
        "measured scaling",
        "paper Mbit/s",
        "paper scaling",
        "groupcomm CPU %",
    ]);
    for (p, (pm, ps)) in pts.iter().zip(paper.iter()) {
        t.row([
            p.gateways.to_string(),
            f(p.mbps, 1),
            f(p.scaling, 2),
            f(*pm, 0),
            f(*ps, 2),
            f(p.cpu_pct, 3),
        ]);
    }
    t.print();
    println!("\nToken-rotation period across the gateways (raincore-obs histograms):\n");
    hist_table(
        pts.iter()
            .map(|p| (format!("{} gateway(s)", p.gateways), p.rotation)),
    )
    .print();
    println!("\n(The absolute numbers depend on the simulated NIC model; the paper's");
    println!("claim is the near-linear *scaling* and the <1 % group-comm CPU share.)");
}
