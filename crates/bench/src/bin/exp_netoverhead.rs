//! E2 — §4.1 network overhead.
//!
//! Paper: in a cluster of N nodes where each node multicasts one message
//! of M bytes, the broadcast-emulated protocol puts `(N-1)²` packets of
//! `M` bytes on the network (doubled with acknowledgements); the token
//! protocol puts `N` packets of `N·M` bytes, reliably and in consistent
//! order. (Our measured fan-out count is `N(N-1)` — every one of the N
//! nodes sends N-1 unicasts; the paper's `(N-1)²` appears to count one
//! sender fewer. Both are Θ(N²); the token side is Θ(N) packets.)
//!
//! Usage: `exp_netoverhead [msg_bytes]` (default 1024).

use raincore_bench::experiments::netoverhead;
use raincore_bench::report::Table;

fn main() {
    let m: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1024);
    println!("E2: network overhead — every node multicasts one {m}-byte message\n");
    for n in [2u32, 4, 8, 16] {
        println!("N = {n}:");
        let mut t = Table::new([
            "protocol",
            "packets",
            "bytes",
            "paper: packets",
            "paper: bytes",
        ]);
        for row in netoverhead(n, m) {
            t.row([
                row.protocol.clone(),
                row.packets.to_string(),
                row.bytes.to_string(),
                row.formula_packets.clone(),
                row.formula_bytes.clone(),
            ]);
        }
        t.print();
        println!();
    }
    println!("Raincore's marginal packet count is ~0 (messages ride the token);");
    println!("its marginal bytes are ≈ N²·M (each message travels one full round).");
}
