//! A4 — failure-detection ablation (§2.2).
//!
//! Paper: "Raincore uses an aggressive failure detection protocol that
//! achieves fast failure detection convergence time. After a node fails
//! to send a TOKEN to the next node … this node immediately decides that
//! the target node has failed or disconnected, and removes that node from
//! the membership."

use raincore_bench::experiments::detection;
use raincore_bench::report::{f, Table};
use raincore_types::config::DetectionMode;

fn main() {
    println!("A4: crash one of 4 members — membership convergence by detection mode\n");
    let mut t = Table::new(["mode", "convergence to N-1", "token rounds/s after crash"]);
    for mode in [DetectionMode::Aggressive, DetectionMode::TimeoutOnly] {
        let r = detection(mode);
        t.row([
            r.mode.to_string(),
            r.convergence
                .map(|d| format!("{:.0} ms", d.as_secs_f64() * 1e3))
                .unwrap_or_else(|| "> 10 s (never)".into()),
            f(r.rounds_after, 1),
        ]);
    }
    t.print();
    println!("\nAggressive detection removes the dead successor in one failed pass;");
    println!("without it the membership never heals and every round pays the");
    println!("retransmission timeout to the dead node first.");
}
