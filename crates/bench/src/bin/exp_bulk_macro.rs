//! E-bulk — sustained large-payload multicast over the batched runtime.
//!
//! Drives a real three-node `RuntimeNode` cluster over loopback UDP with
//! `bulk_threshold` enabled, so every payload in this run is disseminated
//! out of band as bulk frames while the token carries only an id-manifest
//! entry (the Ring Paxos split), all of it riding the sharded
//! `sendmmsg`/`recvmmsg` I/O engine. The origin keeps a bounded window of
//! multicasts in flight; a second node timestamps each delivery against
//! its submit instant.
//!
//! Reported: delivered msgs/sec at the observer, submit-to-deliver p50
//! and p99, and the observer's syscalls-per-packet gauge straight from
//! its Prometheus dump (the batching dividend under a macro workload, not
//! a micro loop).
//!
//! Usage: `exp_bulk_macro [msgs] [payload_bytes]` (default 200 × 1024;
//! payload must stay ≥ the 512-byte `bulk_threshold` for the run to
//! exercise the out-of-band path it claims to).

use raincore::runtime::RuntimeNode;
use raincore::session::{SessionEvent, SessionNode, StartMode};
use raincore_bench::report::Table;
use raincore_net::{Addr, UdpNet};
use raincore_obs::Histogram;
use raincore_transport::PeerTable;
use raincore_types::{
    DeliveryMode, Duration, Incarnation, NodeId, OriginSeq, Ring, SessionConfig, Time,
    TransportConfig,
};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::time::Instant;

const BULK_THRESHOLD: usize = 512;
const WINDOW: usize = 16;

fn main() {
    let msgs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let payload_bytes: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1024);
    assert!(
        payload_bytes >= BULK_THRESHOLD,
        "payload must be ≥ the {BULK_THRESHOLD}-byte bulk threshold so the run \
         actually exercises the out-of-band path"
    );
    println!(
        "E-bulk: {msgs} sustained {payload_bytes}-byte multicasts over loopback UDP \
         (bulk_threshold = {BULK_THRESHOLD}, window = {WINDOW})\n"
    );

    let n = 3u32;
    let ids: Vec<NodeId> = (0..n).map(NodeId).collect();
    let loopback: SocketAddr = "127.0.0.1:0".parse().expect("loopback");
    // Bind all sockets first so every node can learn every address.
    let nets: Vec<UdpNet> = ids
        .iter()
        .map(|&id| UdpNet::bind(&[(Addr::primary(id), loopback)], HashMap::new()).expect("bind"))
        .collect();
    let saddrs: Vec<SocketAddr> = ids
        .iter()
        .zip(&nets)
        .map(|(&id, net)| net.local_socket_addr(Addr::primary(id)).expect("bound"))
        .collect();
    let ring = Ring::from_iter(ids.iter().copied());
    let mut cfg = SessionConfig::for_cluster(n);
    cfg.token_hold = Duration::from_millis(2);
    cfg.bulk_threshold = BULK_THRESHOLD;
    let mut nodes = Vec::new();
    for (i, mut net) in nets.into_iter().enumerate() {
        for (j, &s) in saddrs.iter().enumerate() {
            if i != j {
                net.add_peer(Addr::primary(ids[j]), s);
            }
        }
        let node = SessionNode::new(
            ids[i],
            Incarnation::FIRST,
            cfg.clone(),
            TransportConfig::default(),
            vec![Addr::primary(ids[i])],
            PeerTable::full_mesh(ids.iter().copied(), 1),
            StartMode::Founding(ring.clone()),
            Time::ZERO,
        )
        .expect("session node");
        nodes.push(RuntimeNode::spawn(node, net).expect("spawn runtime node"));
    }
    // Let the group form before load starts.
    std::thread::sleep(std::time::Duration::from_millis(300));

    let payload = bytes::Bytes::from(vec![0xB5u8; payload_bytes]);
    let hist = Histogram::new();
    let mut pending: HashMap<OriginSeq, Instant> = HashMap::new();
    let mut submitted = 0usize;
    let mut delivered = 0usize;
    let start = Instant::now();
    let deadline = start + std::time::Duration::from_secs(120);
    while delivered < msgs {
        // Keep the submit window full: the origin's bounded command
        // queue applies backpressure; a full token sheds to a later pass.
        while submitted < msgs && pending.len() < WINDOW {
            match nodes[0].multicast(DeliveryMode::Agreed, payload.clone()) {
                Ok(seq) => {
                    pending.insert(seq, Instant::now());
                    submitted += 1;
                }
                Err(e) => {
                    assert!(Instant::now() < deadline, "submit stalled: {e:?}");
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            }
        }
        match nodes[1].recv_event(std::time::Duration::from_millis(100)) {
            Some(SessionEvent::Delivery(d)) if d.origin == ids[0] => {
                assert_eq!(d.payload.len(), payload_bytes, "bulk payload truncated");
                if let Some(t0) = pending.remove(&d.seq) {
                    hist.record(t0.elapsed().as_nanos() as u64);
                    delivered += 1;
                }
            }
            _ => {
                assert!(
                    Instant::now() < deadline,
                    "stalled: {delivered}/{msgs} delivered after {:?}",
                    start.elapsed()
                );
            }
        }
    }
    let elapsed = start.elapsed();
    let s = hist.summary();
    assert_eq!(s.count, msgs as u64);

    // The observer's syscalls-per-packet, straight from the running
    // engine's Prometheus dump.
    let spp = nodes[1]
        .obs_dump()
        .and_then(|dump| scrape_gauge(&dump.prometheus, "raincore_io_syscalls_per_packet_milli"))
        .map(|milli| milli / 1000.0);
    for node in &nodes {
        node.leave();
    }

    let mut t = Table::new([
        "delivered msgs/sec",
        "p50 submit→deliver µs",
        "p99 submit→deliver µs",
        "observer syscalls/packet",
    ]);
    t.row([
        format!("{:.0}", delivered as f64 / elapsed.as_secs_f64()),
        format!("{:.0}", s.p50 as f64 / 1_000.0),
        format!("{:.0}", s.p99 as f64 / 1_000.0),
        spp.map_or_else(|| "n/a".to_string(), |v| format!("{v:.3}")),
    ]);
    t.print();
    println!(
        "\n{delivered} bulk multicasts ({payload_bytes} B each) ordered by id-manifest \
         and delivered in {elapsed:.2?}; percentiles are histogram bucket upper bounds."
    );
}

/// Pulls the first sample of `name` out of a Prometheus text dump.
fn scrape_gauge(prom: &str, name: &str) -> Option<f64> {
    prom.lines()
        .find(|l| l.starts_with(name) && !l.starts_with('#'))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}
