//! Hot-path micro-benchmarks with allocation accounting — the PR 5
//! performance harness.
//!
//! The benchmarks, all dependency-free (std timing, a counting global
//! allocator for exact allocation counts):
//!
//! | name | kernel |
//! |---|---|
//! | `bench_token_hop` | steady-state token hop: decode → CoW `last_copy` snapshot → seq bump → patch-per-hop encode ([`TokenEncoder`]) |
//! | `bench_token_hop_legacy` | the pre-change hop: decode → two deep clones → full re-encode with a fresh buffer |
//! | `bench_wire_codec` | encode+decode round-trip of a message-laden token |
//! | `bench_chaos_tick` | one seeded chaos run, normalized per engine tick |
//! | `bench_model_check_states` | one bounded model-check search, normalized per state visited |
//! | `bench_multicast_throughput` | token hop under 64 in-flight 1KiB multicasts: piggyback payloads vs out-of-band id manifests |
//! | `bench_udp_pps` | loopback packet throughput: batched vs scalar vs legacy `UdpNet` engines (≥3x packets-per-syscall and faster-than-legacy asserted) |
//! | `bench_udp_rtt` | ping round-trip p50/p99 over the batched engine while each ping shares its batch with background load |
//!
//! `bytes_per_op` is **heap bytes allocated** per operation (not wire
//! bytes): together with `allocs_per_op` it is the deterministic,
//! machine-independent signal CI gates on. `ns_per_op` is reported for
//! humans and trend lines but never gated (timers are noisy in CI).
//!
//! Usage:
//!
//! ```text
//! micro_bench [--out PATH] [--compare BASELINE]
//! ```
//!
//! `--out` writes the JSON report (default `BENCH_5.json` in the current
//! directory). `--compare` additionally loads a committed baseline and
//! exits non-zero if `bench_token_hop` allocates >25% more per hop than
//! the baseline records.

use bytes::Bytes;
use raincore_net::{Addr, BatchConfig, BatchIo, Datagram, IoBackend, PacketClass, UdpNet};
use raincore_sim::chaos::{generate_schedule, run_chaos, ChaosConfig};
use raincore_sim::explore::Explorer;
use raincore_sim::ModelCheckConfig;
use raincore_types::wire::{WireDecode, WireEncode};
use raincore_types::{
    Attached, DeliveryMode, NodeId, OriginSeq, Ring, SessionMsg, Token, TokenEncoder,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::HashMap;
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

// ----------------------------------------------------------------------
// Counting allocator: exact allocs/bytes, deterministic across runs.
// ----------------------------------------------------------------------

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: defers every operation to `System`; only adds relaxed counter
// bumps, which allocate nothing and cannot fail.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTING_ALLOC: CountingAlloc = CountingAlloc;

// ----------------------------------------------------------------------
// Harness
// ----------------------------------------------------------------------

struct BenchResult {
    name: &'static str,
    ops: u64,
    ns_per_op: f64,
    bytes_per_op: f64,
    allocs_per_op: f64,
    /// Extra report-only fields (`name → value`), e.g. the per-stage
    /// hop-latency percentiles. Never gated: timings are machine noise.
    extras: Vec<(String, f64)>,
}

/// Runs `f` once (it loops internally and returns its op count) with the
/// allocator counters and a wall timer around it.
fn measure(name: &'static str, f: impl FnOnce() -> u64) -> BenchResult {
    let a0 = ALLOC_CALLS.load(Ordering::Relaxed);
    let b0 = ALLOC_BYTES.load(Ordering::Relaxed);
    let t0 = Instant::now();
    let ops = f().max(1);
    let ns = t0.elapsed().as_nanos() as f64;
    let allocs = (ALLOC_CALLS.load(Ordering::Relaxed) - a0) as f64;
    let bytes = (ALLOC_BYTES.load(Ordering::Relaxed) - b0) as f64;
    let r = BenchResult {
        name,
        ops,
        ns_per_op: ns / ops as f64,
        bytes_per_op: bytes / ops as f64,
        allocs_per_op: allocs / ops as f64,
        extras: Vec::new(),
    };
    println!(
        "{:28} {:>10} ops  {:>12.1} ns/op  {:>10.1} B/op  {:>8.2} allocs/op",
        r.name, r.ops, r.ns_per_op, r.bytes_per_op, r.allocs_per_op
    );
    r
}

fn quiescent_token(members: u32) -> Token {
    let mut t = Token::founding(Ring::from_iter((0..members).map(NodeId)));
    t.seq = 1_000;
    t
}

// ----------------------------------------------------------------------
// Kernels
// ----------------------------------------------------------------------

const HOPS: u64 = 100_000;

/// The post-change steady-state hop: decode the incoming wire image, take
/// the CoW `last_copy` snapshot (an `Arc` bump), bump `seq`, and encode
/// through the pooled patch-per-hop encoder.
fn token_hop() -> u64 {
    let mut enc = TokenEncoder::new();
    let mut wire = enc.encode(&quiescent_token(8));
    let mut last_copy = None;
    for _ in 0..HOPS {
        let SessionMsg::Token(mut t) = SessionMsg::decode_from_bytes(&wire).expect("decodes")
        else {
            unreachable!("wire image is a token")
        };
        t.seq += 1;
        last_copy = Some(t.clone());
        wire = enc.encode(&t);
        black_box(&wire);
    }
    black_box(&last_copy);
    assert!(
        enc.cache_hits() >= HOPS - 1,
        "steady-state hops must hit the body cache"
    );
    HOPS
}

/// The pre-change hop, reconstructed: the ring and message list were
/// plain `Vec`s, so the `last_copy` snapshot and the wire-side copy were
/// both deep clones, and every hop re-encoded the whole token into a
/// fresh buffer. Kept as the in-file baseline the ≥2× allocation win is
/// measured against.
fn token_hop_legacy() -> u64 {
    fn deep_clone(t: &Token) -> Token {
        let mut c = Token::founding(Ring::from_iter(t.ring.iter()));
        c.seq = t.seq;
        c.tbm = t.tbm;
        c.trace = t.trace;
        c.msgs = t.msgs.iter().cloned().collect::<Vec<_>>().into();
        c
    }
    let mut wire = SessionMsg::Token(quiescent_token(8)).encode_to_bytes();
    let mut last_copy = None;
    for _ in 0..HOPS {
        let SessionMsg::Token(mut t) = SessionMsg::decode_from_bytes(&wire).expect("decodes")
        else {
            unreachable!("wire image is a token")
        };
        t.seq += 1;
        last_copy = Some(deep_clone(&t));
        wire = SessionMsg::Token(deep_clone(&t)).encode_to_bytes();
        black_box(&wire);
    }
    black_box(&last_copy);
    HOPS
}

/// Encode+decode round-trip of a token carrying piggybacked multicasts —
/// the non-quiescent codec cost the body cache cannot help with.
fn wire_codec() -> u64 {
    const OPS: u64 = 20_000;
    let mut t = quiescent_token(8);
    for i in 0..4u64 {
        let mut a = Attached::new(
            NodeId((i % 8) as u32),
            OriginSeq(i),
            DeliveryMode::Agreed,
            Bytes::from(vec![0xAB; 128]),
        );
        a.mark_seen(NodeId(0));
        t.msgs.push(a);
    }
    let msg = SessionMsg::Token(t);
    for _ in 0..OPS {
        let wire = msg.encode_to_bytes();
        let back = SessionMsg::decode_from_bytes(&wire).expect("round-trips");
        black_box(&back);
    }
    OPS
}

/// One seeded chaos run (schedule generation + engine + oracles),
/// normalized per engine tick — the end-to-end cost of a simulated
/// protocol instant.
fn chaos_tick() -> u64 {
    let cfg = ChaosConfig {
        nodes: 4,
        seed: 5,
        ticks: 200,
        ..ChaosConfig::default()
    };
    let schedule = generate_schedule(&cfg);
    let report = run_chaos(&cfg, &schedule).expect("chaos run");
    assert!(report.violation.is_none(), "seed 5 is a known-clean run");
    report.ticks_run
}

/// Per-stage hop-latency percentiles, captured by [`hop_latency`] for
/// the report writer (the harness closure can only return an op count).
static HOP_STAGE_SUMMARIES: std::sync::OnceLock<Vec<(String, f64)>> = std::sync::OnceLock::new();

/// A 4-node simulated ring driven with a *real* monotonic stage clock:
/// virtual time schedules the protocol, the wall clock times each hop's
/// recv → decode → protocol → encode → send pipeline. One op is one
/// completed hop span; the per-stage p50/p99 land in the report as
/// extra (never-gated) fields, while allocs/op rides the standard gate.
fn hop_latency() -> u64 {
    use raincore_obs::{Stage, StageClock, StageHists};
    use raincore_sim::{Cluster, ClusterConfig};
    use raincore_types::{Duration, Time};

    let mut cfg = ClusterConfig::default();
    cfg.session.token_hold = Duration::from_millis(2);
    cfg.session.hungry_timeout = Duration::from_millis(100);
    let mut c = Cluster::founding(4, cfg).expect("founding cluster");
    for id in c.member_ids() {
        c.session_mut(id)
            .expect("member")
            .obs_mut()
            .set_stage_clock(StageClock::monotonic());
    }
    c.run_until(Time::ZERO + Duration::from_secs(2));

    let agg = StageHists::new();
    for id in c.member_ids() {
        let o = c.session(id).expect("member").obs();
        for stage in Stage::ALL {
            agg.get(stage).merge_from(o.hop_stages.get(stage));
        }
    }
    let mut extras = Vec::new();
    for (stage, s) in agg.summaries() {
        extras.push((format!("{}_p50_ns", stage.label()), s.p50 as f64));
        extras.push((format!("{}_p99_ns", stage.label()), s.p99 as f64));
    }
    let ops = agg.get(Stage::Send).count();
    HOP_STAGE_SUMMARIES.set(extras).expect("set once");
    ops
}

/// Per-mode token-load bytes and the piggyback→OOB reduction factor,
/// captured by [`multicast_throughput`] for the report writer.
static MULTICAST_SUMMARIES: std::sync::OnceLock<Vec<(String, f64)>> = std::sync::OnceLock::new();

/// DESIGN.md §13 measured at the wire: a token carrying 64 in-flight
/// 1KiB agreed multicasts hops the ring twice over — once with every
/// payload piggybacked inline (the pre-split path) and once as
/// out-of-band id manifests (the payloads travel as bulk frames, so the
/// token carries only `(origin, seq, len)` plus the seen-set watermark).
/// One op is one hop (decode → seq bump → patch-per-hop encode); the
/// *token-load* bytes per hop — wire size beyond the quiescent token —
/// land in the report per mode together with their ratio, and the ≥5x
/// dissemination/ordering split win is asserted in-process.
fn multicast_throughput() -> u64 {
    const MSGS: u64 = 64;
    const PAYLOAD: usize = 1024;
    const LOAD_HOPS: u64 = 2_000;

    let quiescent_len = TokenEncoder::new().encode(&quiescent_token(8)).len() as u64;

    let run = |oob: bool| -> f64 {
        let mut t = quiescent_token(8);
        for i in 0..MSGS {
            let origin = NodeId((i % 8) as u32);
            let mut a = if oob {
                Attached::new_oob(origin, OriginSeq(i), DeliveryMode::Agreed, PAYLOAD as u64)
            } else {
                Attached::new(
                    origin,
                    OriginSeq(i),
                    DeliveryMode::Agreed,
                    Bytes::from(vec![0xCD; PAYLOAD]),
                )
            };
            a.mark_seen(NodeId(0));
            t.msgs.push(a);
        }
        let mut enc = TokenEncoder::new();
        let mut wire = enc.encode(&t);
        let mut load = 0u64;
        for _ in 0..LOAD_HOPS {
            let SessionMsg::Token(mut t) = SessionMsg::decode_from_bytes(&wire).expect("decodes")
            else {
                unreachable!("wire image is a token")
            };
            t.seq += 1;
            load += (wire.len() as u64).saturating_sub(quiescent_len);
            wire = enc.encode(&t);
            black_box(&wire);
        }
        load as f64 / LOAD_HOPS as f64
    };

    let piggyback = run(false);
    let oob = run(true);
    let reduction = piggyback / oob;
    assert!(
        reduction >= 5.0,
        "id manifests must shrink the token load at least 5x at 64 in-flight \
         1KiB multicasts: piggyback {piggyback:.0} B/hop vs oob {oob:.0} B/hop \
         ({reduction:.1}x)"
    );
    MULTICAST_SUMMARIES
        .set(vec![
            ("piggyback_load_bytes_per_hop".to_string(), piggyback),
            ("oob_load_bytes_per_hop".to_string(), oob),
            ("payload_bytes_reduction_x".to_string(), reduction),
        ])
        .expect("set once");
    2 * LOAD_HOPS
}

/// One bounded model-check search, normalized per state visited.
fn model_check_states() -> u64 {
    let cfg = ModelCheckConfig {
        nodes: 3,
        max_depth: 8,
        max_schedules: 1_500,
        ..ModelCheckConfig::default()
    };
    let report = Explorer::new(cfg).run().expect("model check");
    assert!(
        report.violation.is_none(),
        "bounded space is violation-free"
    );
    report.stats.states
}

/// A connected pair of batched UDP endpoints on loopback.
fn udp_pair(cfg: BatchConfig) -> (BatchIo, BatchIo, Addr, Addr) {
    let a_addr = Addr::primary(NodeId(990));
    let b_addr = Addr::primary(NodeId(991));
    let loopback: std::net::SocketAddr = "127.0.0.1:0".parse().expect("loopback");
    let mut a = BatchIo::bind(&[(a_addr, loopback)], HashMap::new(), cfg).expect("bind a");
    let mut b = BatchIo::bind(&[(b_addr, loopback)], HashMap::new(), cfg).expect("bind b");
    a.add_peer(b_addr, b.local_socket_addr(b_addr).expect("b bound"));
    b.add_peer(a_addr, a.local_socket_addr(a_addr).expect("a bound"));
    (a, b, a_addr, b_addr)
}

/// Per-backend packet rates and the batching speedup, captured by
/// [`udp_pps`] for the report writer.
static UDP_PPS_SUMMARIES: std::sync::OnceLock<Vec<(String, f64)>> = std::sync::OnceLock::new();

/// ROADMAP item 3 measured at the syscall boundary: the same
/// send-burst → drain workload over loopback UDP through three engines —
/// the `sendmmsg`/`recvmmsg` batched path, the scalar
/// one-datagram-per-syscall fallback, and the legacy `UdpNet` (reader
/// thread + per-datagram channel hop) this PR replaced. One op is one
/// datagram moved end to end, counted across all three legs.
///
/// Two figures are asserted in-process on Linux:
/// - **packets per syscall ≥ 3x** batched over scalar, from the engine's
///   own syscall/packet counters. This is the deterministic form of the
///   packets/sec claim — wall-clock pps on a loaded single-core CI host
///   is dominated by the kernel's fixed per-packet loopback cost plus
///   scheduler noise, exactly the "timers are machine noise" rule the
///   rest of this harness gates by, so the throughput ratio is asserted
///   where it is reproducible (the syscall ledger) and *reported* where
///   it is noisy (wall-clock pps per leg, in the extras).
/// - **wall-clock pps strictly above legacy**: whatever the host, the
///   batched engine must beat the reader-thread engine it replaced
///   (measured ≥ 1.7x even on one core; the assert keeps headroom).
///
/// The pool holds as many blocks as a burst has frames, so steady-state
/// receiving reuses blocks instead of allocating; the legacy leg
/// allocates per datagram (encode copy, decode copy, channel node) by
/// construction. The gated allocs/op figure locks in that contrast — an
/// accidental per-frame allocation on the batched path moves the number
/// by ~30% and trips the compare gate.
fn udp_pps() -> u64 {
    const FRAMES: u64 = 48_000;
    const BURST: usize = 32;

    // (wall-clock pps, syscalls per 1000 packets) for one BatchIo leg.
    let run = |backend: IoBackend| -> (f64, f64) {
        let cfg = BatchConfig {
            batch: BURST,
            slot: 256,
            pool_blocks: BURST,
            backend,
        };
        let (mut tx, mut rx, a_addr, b_addr) = udp_pair(cfg);
        let burst: Vec<Datagram> = (0..BURST)
            .map(|i| Datagram::data(a_addr, b_addr, Bytes::from(vec![i as u8; 32])))
            .collect();
        let mut out: Vec<Datagram> = Vec::with_capacity(2 * BURST);
        let mut moved = 0u64;
        let t0 = Instant::now();
        while moved < FRAMES {
            let sent = tx.send_batch(&burst) as u64;
            let mut got = 0u64;
            let deadline = Instant::now() + Duration::from_secs(5);
            while got < sent && Instant::now() < deadline {
                got += rx.recv_batch(&mut out, Duration::from_millis(5)) as u64;
                out.clear();
            }
            moved += got;
        }
        let pps = moved as f64 / t0.elapsed().as_secs_f64();
        let syscalls = tx.metrics().syscalls_send.get()
            + tx.metrics().syscalls_poll.get()
            + rx.metrics().syscalls_recv.get()
            + rx.metrics().syscalls_poll.get();
        let packets = tx.metrics().packets_sent.get() + rx.metrics().packets_recv.get();
        (pps, syscalls as f64 * 1000.0 / packets as f64)
    };

    // The replaced engine, driven exactly as the old runtime drove it:
    // one `send_to` per frame, receive via the reader thread's channel.
    let run_legacy = || -> f64 {
        let a_addr = Addr::primary(NodeId(990));
        let b_addr = Addr::primary(NodeId(991));
        let loopback: std::net::SocketAddr = "127.0.0.1:0".parse().expect("loopback");
        let mut tx = UdpNet::bind(&[(a_addr, loopback)], HashMap::new()).expect("bind tx");
        let mut rx = UdpNet::bind(&[(b_addr, loopback)], HashMap::new()).expect("bind rx");
        tx.add_peer(b_addr, rx.local_socket_addr(b_addr).expect("rx bound"));
        rx.add_peer(a_addr, tx.local_socket_addr(a_addr).expect("tx bound"));
        let burst: Vec<Datagram> = (0..BURST)
            .map(|i| Datagram::data(a_addr, b_addr, Bytes::from(vec![i as u8; 32])))
            .collect();
        let mut moved = 0u64;
        let t0 = Instant::now();
        while moved < FRAMES {
            for d in &burst {
                tx.send(d).expect("loopback send");
            }
            let mut got = 0u64;
            let deadline = Instant::now() + Duration::from_secs(5);
            while got < BURST as u64 && Instant::now() < deadline {
                if rx.recv_timeout(Duration::from_millis(5)).is_some() {
                    got += 1;
                }
            }
            moved += got;
        }
        moved as f64 / t0.elapsed().as_secs_f64()
    };

    let (batched_pps, batched_spk) = run(IoBackend::Batched);
    let (scalar_pps, scalar_spk) = run(IoBackend::Scalar);
    let legacy_pps = run_legacy();
    let syscall_reduction = scalar_spk / batched_spk;
    let pps_vs_legacy = batched_pps / legacy_pps;
    if cfg!(target_os = "linux") {
        assert!(
            syscall_reduction >= 3.0,
            "batching must move at least 3x the packets per syscall: \
             batched {batched_spk:.0} syscalls/kpacket vs scalar \
             {scalar_spk:.0} syscalls/kpacket ({syscall_reduction:.1}x)"
        );
        assert!(
            pps_vs_legacy > 1.0,
            "the batched engine must outrun the legacy reader-thread engine: \
             batched {batched_pps:.0} pps vs legacy {legacy_pps:.0} pps"
        );
    }
    UDP_PPS_SUMMARIES
        .set(vec![
            ("batched_pps".to_string(), batched_pps),
            ("scalar_pps".to_string(), scalar_pps),
            ("legacy_pps".to_string(), legacy_pps),
            ("batched_syscalls_per_kpacket".to_string(), batched_spk),
            ("scalar_syscalls_per_kpacket".to_string(), scalar_spk),
            ("syscall_reduction_x".to_string(), syscall_reduction),
            ("pps_vs_legacy_x".to_string(), pps_vs_legacy),
        ])
        .expect("set once");
    3 * FRAMES
}

/// Round-trip percentiles captured by [`udp_rtt`] for the report writer.
static UDP_RTT_SUMMARIES: std::sync::OnceLock<Vec<(String, f64)>> = std::sync::OnceLock::new();

/// Ping round-trip latency over the batched engine *under load*: every
/// ping shares its `sendmmsg` batch with background data frames, so the
/// measured p50/p99 include the queueing a real token hop sees when it
/// rides a flush alongside bulk traffic. One op is one completed round
/// trip; the percentiles land in the report as extras (never gated —
/// timings are machine noise), allocs/op rides the standard gate.
fn udp_rtt() -> u64 {
    const PINGS: u64 = 2_000;
    const LOAD: usize = 15;

    let cfg = BatchConfig {
        batch: 32,
        slot: 256,
        pool_blocks: 32,
        backend: IoBackend::default_for_platform(),
    };
    let (mut a, mut b, a_addr, b_addr) = udp_pair(cfg);
    let hist = raincore_obs::Histogram::new();
    let load = Bytes::from(vec![0xB6u8; 64]);
    let mut burst: Vec<Datagram> = Vec::with_capacity(LOAD + 1);
    let mut out_b: Vec<Datagram> = Vec::new();
    let mut out_a: Vec<Datagram> = Vec::new();
    for i in 0..PINGS {
        burst.clear();
        for _ in 0..LOAD {
            burst.push(Datagram::data(a_addr, b_addr, load.clone()));
        }
        // The ping rides last in the batch — worst queueing position.
        burst.push(Datagram::control(
            a_addr,
            b_addr,
            Bytes::copy_from_slice(&i.to_le_bytes()),
        ));
        let t0 = Instant::now();
        assert_eq!(a.send_batch(&burst), LOAD + 1, "loopback accepts the batch");
        // Reflect the ping at B the moment it surfaces; drop the load.
        let deadline = Instant::now() + Duration::from_secs(5);
        'reflect: while Instant::now() < deadline {
            b.recv_batch(&mut out_b, Duration::from_millis(5));
            for d in out_b.drain(..) {
                if d.class == PacketClass::Control {
                    let echo = Datagram::control(b_addr, a_addr, d.payload);
                    assert_eq!(b.send_batch(&[echo]), 1);
                    break 'reflect;
                }
            }
        }
        let mut echoed = false;
        let deadline = Instant::now() + Duration::from_secs(5);
        while !echoed && Instant::now() < deadline {
            a.recv_batch(&mut out_a, Duration::from_millis(5));
            for d in out_a.drain(..) {
                if d.payload[..] == i.to_le_bytes()[..] {
                    hist.record(t0.elapsed().as_nanos() as u64);
                    echoed = true;
                }
            }
        }
        assert!(echoed, "ping {i} echo lost on loopback");
    }
    let s = hist.summary();
    assert_eq!(s.count, PINGS);
    UDP_RTT_SUMMARIES
        .set(vec![
            ("rtt_p50_ns".to_string(), s.p50 as f64),
            ("rtt_p99_ns".to_string(), s.p99 as f64),
        ])
        .expect("set once");
    PINGS
}

// ----------------------------------------------------------------------
// Report + compare
// ----------------------------------------------------------------------

fn to_json(results: &[BenchResult]) -> String {
    let mut out = String::from("{\n  \"schema\": \"raincore-micro-bench/v1\",\n");
    out.push_str(&format!(
        "  \"profile\": \"{}\",\n  \"benchmarks\": [\n",
        if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        }
    ));
    for (i, r) in results.iter().enumerate() {
        let extras: String = r
            .extras
            .iter()
            .map(|(k, v)| format!(", \"{k}\": {v:.1}"))
            .collect();
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"ops\": {}, \"ns_per_op\": {:.1}, \"bytes_per_op\": {:.1}, \"allocs_per_op\": {:.3}{extras}}}{}\n",
            r.name,
            r.ops,
            r.ns_per_op,
            r.bytes_per_op,
            r.allocs_per_op,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Pulls `"field": <number>` out of the benchmark object named `bench`
/// in a report this binary wrote. Good enough for our own format; not a
/// general JSON parser.
fn extract(json: &str, bench: &str, field: &str) -> Option<f64> {
    let obj_start = json.find(&format!("\"name\": \"{bench}\""))?;
    let obj = &json[obj_start..json[obj_start..].find('}')? + obj_start];
    let at = obj.find(&format!("\"{field}\":"))?;
    let tail = obj[at..].split_once(':')?.1;
    let num: String = tail
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

fn main() {
    let mut out_path = String::from("BENCH_5.json");
    let mut compare: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out PATH"),
            "--compare" => compare = Some(args.next().expect("--compare BASELINE")),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    println!("raincore micro-benchmarks (allocation-counting harness)\n");
    let mut results = [
        measure("bench_token_hop", token_hop),
        measure("bench_token_hop_legacy", token_hop_legacy),
        measure("bench_wire_codec", wire_codec),
        measure("bench_chaos_tick", chaos_tick),
        measure("bench_model_check_states", model_check_states),
        measure("bench_hop_latency", hop_latency),
        measure("bench_multicast_throughput", multicast_throughput),
        measure("bench_udp_pps", udp_pps),
        measure("bench_udp_rtt", udp_rtt),
    ];
    if let Some(extras) = HOP_STAGE_SUMMARIES.get() {
        results[5].extras = extras.clone();
        for (k, v) in extras {
            println!("  bench_hop_latency {k:>16} = {v:.0}");
        }
    }
    if let Some(extras) = MULTICAST_SUMMARIES.get() {
        results[6].extras = extras.clone();
        for (k, v) in extras {
            println!("  bench_multicast_throughput {k} = {v:.1}");
        }
    }
    if let Some(extras) = UDP_PPS_SUMMARIES.get() {
        results[7].extras = extras.clone();
        for (k, v) in extras {
            println!("  bench_udp_pps {k} = {v:.1}");
        }
    }
    if let Some(extras) = UDP_RTT_SUMMARIES.get() {
        results[8].extras = extras.clone();
        for (k, v) in extras {
            println!("  bench_udp_rtt {k} = {v:.0}");
        }
    }

    // The tentpole claim, asserted in-process: the patched hop allocates
    // at least 2× less than the reconstructed pre-change hop.
    let new_hop = &results[0];
    let legacy_hop = &results[1];
    assert!(
        legacy_hop.allocs_per_op >= 2.0 * new_hop.allocs_per_op,
        "patch-per-hop must halve allocations: legacy {:.2}/hop vs new {:.2}/hop",
        legacy_hop.allocs_per_op,
        new_hop.allocs_per_op
    );
    // The trace context rides the patched header: carrying it must not
    // break the 6-allocations-per-hop floor the encoder work bought.
    // The measured closure includes one-time setup (founding token,
    // first full encode), hence the sub-1% amortization allowance.
    assert!(
        new_hop.allocs_per_op <= 6.01,
        "trace context pushed the hop over the 6-alloc floor: {:.3}/hop",
        new_hop.allocs_per_op
    );
    // State-fingerprinting budget: canonicalizing and hashing a model
    // state (plus the visited-table bookkeeping) must stay within 250
    // allocations per state visited, or symmetry reduction costs more
    // than the exploration it prunes.
    let mc = results
        .iter()
        .find(|r| r.name == "bench_model_check_states")
        .expect("model-check bench ran");
    assert!(
        mc.allocs_per_op <= 250.0,
        "state fingerprinting pushed the model checker over the \
         250-allocs-per-state budget: {:.3}/state",
        mc.allocs_per_op
    );

    // Export the allocations-per-hop gauge alongside the other metrics.
    let registry = raincore_obs::Registry::new();
    registry.set_gauge(
        "raincore_bench_allocs_per_hop",
        &[("bench", "token_hop")],
        new_hop.allocs_per_op.ceil() as i64,
    );
    registry.set_gauge(
        "raincore_bench_allocs_per_hop",
        &[("bench", "token_hop_legacy")],
        legacy_hop.allocs_per_op.ceil() as i64,
    );
    println!("\n{}", registry.snapshot().to_prometheus());

    let json = to_json(&results);
    std::fs::write(&out_path, &json).expect("write report");
    println!("wrote {out_path}");

    if let Some(baseline_path) = compare {
        let baseline = std::fs::read_to_string(&baseline_path).expect("read baseline");
        // The hard >25% allocation gates: the steady-state wire hop, the
        // full simulated pipeline hop (which the trace/span plumbing
        // rides on, so a tracing regression trips it), the model-check
        // state cost (which the fingerprint/symmetry machinery rides
        // on), and the batched I/O engine's loopback workloads (which
        // the buffer pool rides on — a pool regression shows up as
        // per-datagram allocations).
        for gated in [
            "bench_token_hop",
            "bench_hop_latency",
            "bench_model_check_states",
            "bench_multicast_throughput",
            "bench_udp_pps",
            "bench_udp_rtt",
        ] {
            let base = extract(&baseline, gated, "allocs_per_op")
                .unwrap_or_else(|| panic!("baseline has {gated} allocs_per_op"));
            let now = results
                .iter()
                .find(|r| r.name == gated)
                .expect("gated bench ran")
                .allocs_per_op;
            let limit = base * 1.25;
            println!(
                "compare vs {baseline_path}: {gated} {now:.3} allocs/op \
                 (baseline {base:.3}, limit {limit:.3})"
            );
            if now > limit {
                eprintln!("FAIL: {gated} allocations regressed more than 25%");
                std::process::exit(1);
            }
        }
        for r in &results {
            if let Some(b) = extract(&baseline, r.name, "allocs_per_op") {
                let delta = if b > 0.0 {
                    (r.allocs_per_op / b - 1.0) * 100.0
                } else {
                    0.0
                };
                println!("  {:28} allocs/op {:+.1}% vs baseline", r.name, delta);
            }
        }
        println!("compare OK");
    }
}
