//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each experiment is a library function (testable, reusable) plus a thin
//! binary that prints the same rows the paper reports:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `exp_taskswitch` | §4.1 CPU task-switching comparison (L vs M·N vs 2PC) |
//! | `exp_netoverhead` | §4.1 network overhead ((N-1)² packets of M bytes vs N packets of N·M bytes) |
//! | `exp_fig3` | Figure 3: Rainwall throughput & scaling at 1/2/4 gateways |
//! | `exp_failover` | §3.2: < 2 s fail-over hiccup on cable unplug |
//! | `exp_medium` | §4.1: hub (shared 100 Mbit/s) vs switch (N × 100 Mbit/s) |
//! | `exp_ablation_tokenfreq` | token rate L vs task switches & multicast latency |
//! | `exp_ablation_safe` | agreed vs safe delivery latency (§2.6's extra round) |
//! | `exp_ablation_redundant` | redundant links vs membership stability (§2.1) |
//! | `exp_ablation_detection` | aggressive vs timeout-only failure detection (§2.2) |
//!
//! Run everything with `--release`; the simulations move hundreds of
//! thousands of packets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;

pub use report::Table;
