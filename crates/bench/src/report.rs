//! Minimal aligned-table printer for experiment output, plus histogram
//! summary rendering so every `exp_*` binary reports latency
//! *distributions* (p50/p90/p99/max) and not just means.

use raincore_obs::{fmt_ns, HistSummary};

/// A text table: header row plus data rows, printed with aligned columns.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.headers.len(), String::new());
        self.rows.push(r);
        self
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", c, width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with `digits` decimals.
pub fn f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Builds an aligned table of labeled nanosecond histogram summaries:
/// `metric  n  p50  p90  p99  max` (values human-formatted via
/// [`fmt_ns`]).
pub fn hist_table<S: Into<String>>(rows: impl IntoIterator<Item = (S, HistSummary)>) -> Table {
    let mut t = Table::new(["metric", "n", "p50", "p90", "p99", "max"]);
    for (label, s) in rows {
        t.row([
            label.into(),
            s.count.to_string(),
            fmt_ns(s.p50),
            fmt_ns(s.p90),
            fmt_ns(s.p99),
            fmt_ns(s.max),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["n", "value"]);
        t.row(["1", "10"]);
        t.row(["100", "3"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("n") && lines[0].contains("value"));
        assert!(lines[1].starts_with('-'));
        // Right-aligned columns: same width per line.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["1"]);
        assert!(t.render().lines().count() == 3);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(f(2.0, 0), "2");
    }

    #[test]
    fn hist_table_renders_percentiles() {
        let h = raincore_obs::Histogram::new();
        for v in [1_000_000u64, 2_000_000, 3_000_000] {
            h.record(v);
        }
        let s = hist_table([("token rotation", h.summary())]).render();
        assert!(s.contains("p50") && s.contains("p99"), "{s}");
        assert!(s.contains("token rotation"), "{s}");
        assert!(s.contains("ms"), "human-formatted nanoseconds: {s}");
    }
}
