//! Experiment implementations (see the crate docs for the index).

use bytes::Bytes;
use raincore_broadcast::{BroadcastCluster, Mode};
use raincore_net::{Addr, MediumKind, PacketClass, SimNetConfig};
use raincore_obs::{HistSummary, Histogram};
use raincore_rainwall::{Scenario, ScenarioCfg};
use raincore_sim::{Cluster, ClusterConfig};
use raincore_types::{DeliveryMode, Duration, NodeId, Time};

/// Merges a per-node histogram (picked off each member's observability
/// side-car) across the whole cluster into one summary.
fn merged_hist(
    c: &Cluster,
    pick: impl Fn(&raincore_session::SessionNode) -> &Histogram,
) -> HistSummary {
    let merged = Histogram::new();
    for id in c.member_ids() {
        if let Some(s) = c.session(id) {
            merged.merge_from(pick(s));
        }
    }
    merged.summary()
}

/// Per-second session-layer parameters shared by the protocol experiments.
fn proto_cfg(n: u32, l_rounds_per_sec: f64) -> ClusterConfig {
    let mut c = ClusterConfig {
        session: raincore_types::SessionConfig::for_cluster(n).with_token_rate(n, l_rounds_per_sec),
        ..Default::default()
    };
    c.session.hungry_timeout = Duration::from_secs_f64((4.0 / l_rounds_per_sec).max(0.5));
    c.session.starving_retry = Duration::from_millis(100);
    c.session.beacon_period = Duration::from_secs(5);
    c.transport.retry_timeout = Duration::from_millis(20);
    // §4.1's model counts "N packets of N·M bytes": the token is one
    // packet per hop. A jumbo MTU keeps the transport from fragmenting
    // large tokens so the measurement matches the paper's unit of count
    // (the fragmentation trade-off is discussed in EXPERIMENTS.md).
    c.transport.mtu = 60_000;
    c
}

// ======================================================================
// E1 — §4.1 task-switching table
// ======================================================================

/// One row of the task-switching comparison.
#[derive(Clone, Copy, Debug)]
pub struct TaskSwitchRow {
    /// Cluster size.
    pub n: u32,
    /// Multicasts per second per node.
    pub m: u32,
    /// Token rounds per second (Raincore's `L`).
    pub l: f64,
    /// Measured group-communication wake-ups per second per node, Raincore.
    pub raincore: f64,
    /// Same, reliable acknowledged fan-out.
    pub reliable: f64,
    /// Same, sequencer 2PC (consistent ordering) — max over nodes, since
    /// the sequencer is the hotspot.
    pub sequenced_max: f64,
    /// Sequencer 2PC, mean over nodes.
    pub sequenced_mean: f64,
}

/// Measures §4.1's CPU metric: group-communication processing wake-ups
/// per second per node, for Raincore and the broadcast baselines, with
/// `n` nodes each multicasting `m` messages/s and the token doing
/// `l` rounds/s.
pub fn taskswitch(n: u32, m: u32, l: f64, secs: u64) -> TaskSwitchRow {
    let payload = Bytes::from(vec![0u8; 64]);

    // --- Raincore ---
    let mut c = Cluster::founding(n, proto_cfg(n, l)).expect("cluster");
    let warm = Time::ZERO + Duration::from_secs(1);
    c.run_until(warm);
    let before: u64 = (0..n).map(|i| c.metrics(NodeId(i)).task_switches).sum();
    inject_periodic(&mut c, n, m, secs, &payload);
    let after: u64 = (0..n).map(|i| c.metrics(NodeId(i)).task_switches).sum();
    let raincore = (after - before) as f64 / secs as f64 / f64::from(n);

    // --- Baselines ---
    let run_baseline = |mode: Mode| -> Vec<f64> {
        let mut b =
            BroadcastCluster::new(n, mode, SimNetConfig::default(), Duration::from_millis(20));
        b.run_for(Duration::from_millis(100));
        let before: Vec<u64> = (0..n)
            .map(|i| b.stats(NodeId(i)).events_processed)
            .collect();
        let step = Duration::from_nanos(1_000_000_000 / u64::from(m.max(1)));
        let mut t = b.now();
        for _ in 0..(m as u64 * secs) {
            for i in 0..n {
                b.multicast(NodeId(i), payload.clone());
            }
            t += step;
            b.run_until(t);
        }
        (0..n)
            .map(|i| {
                (b.stats(NodeId(i)).events_processed - before[i as usize]) as f64 / secs as f64
            })
            .collect()
    };
    let reliable_rates = run_baseline(Mode::Reliable);
    let reliable = reliable_rates.iter().sum::<f64>() / f64::from(n);
    let seq_rates = run_baseline(Mode::Sequenced);
    let sequenced_max = seq_rates.iter().cloned().fold(0.0, f64::max);
    let sequenced_mean = seq_rates.iter().sum::<f64>() / f64::from(n);

    TaskSwitchRow {
        n,
        m,
        l,
        raincore,
        reliable,
        sequenced_max,
        sequenced_mean,
    }
}

fn inject_periodic(c: &mut Cluster, n: u32, m: u32, secs: u64, payload: &Bytes) {
    let step = Duration::from_nanos(1_000_000_000 / u64::from(m.max(1)));
    let mut t = c.now();
    for _ in 0..(m as u64 * secs) {
        for i in 0..n {
            let _ = c.multicast(NodeId(i), DeliveryMode::Agreed, payload.clone());
        }
        t += step;
        c.run_until(t);
    }
}

// ======================================================================
// E2 — §4.1 network-overhead table
// ======================================================================

/// One row of the network-overhead comparison: each of `n` nodes
/// multicasts one message of `msg_bytes`.
#[derive(Clone, Debug)]
pub struct NetOverheadRow {
    /// Protocol label.
    pub protocol: String,
    /// Control packets put on the wire during the delivery window
    /// (marginal for Raincore: idle token traffic subtracted).
    pub packets: i64,
    /// Control bytes on the wire (marginal for Raincore).
    pub bytes: i64,
    /// The paper's closed-form prediction for packets.
    pub formula_packets: String,
    /// The paper's closed-form prediction for bytes.
    pub formula_bytes: String,
}

/// Measures §4.1's network overhead for all four protocols.
pub fn netoverhead(n: u32, msg_bytes: usize) -> Vec<NetOverheadRow> {
    let payload = Bytes::from(vec![0u8; msg_bytes]);
    let window = Duration::from_secs(2);
    let mut rows = Vec::new();

    // --- Raincore: marginal cost over the idle token ---
    let mut c = Cluster::founding(n, proto_cfg(n, 10.0)).expect("cluster");
    c.run_for(Duration::from_secs(1));
    c.reset_net_stats();
    c.run_for(window);
    let idle_p = c.net_stats().total_sent(PacketClass::Control).pkts as i64;
    let idle_b = c.net_stats().total_sent(PacketClass::Control).bytes as i64;
    c.reset_net_stats();
    for i in 0..n {
        c.multicast(NodeId(i), DeliveryMode::Agreed, payload.clone())
            .expect("multicast");
    }
    c.run_for(window);
    let mc_p = c.net_stats().total_sent(PacketClass::Control).pkts as i64;
    let mc_b = c.net_stats().total_sent(PacketClass::Control).bytes as i64;
    rows.push(NetOverheadRow {
        protocol: "raincore (marginal)".into(),
        packets: mc_p - idle_p,
        bytes: mc_b - idle_b,
        formula_packets: "0 extra (piggybacked)".into(),
        formula_bytes: format!("N²·M = {}", u64::from(n) * u64::from(n) * msg_bytes as u64),
    });

    // --- Baselines ---
    let mut run_mode = |label: &str, mode: Mode, fp: String, fb: String| {
        let mut b =
            BroadcastCluster::new(n, mode, SimNetConfig::default(), Duration::from_millis(20));
        b.run_for(Duration::from_millis(100));
        b.reset_net_stats();
        for i in 0..n {
            b.multicast(NodeId(i), payload.clone());
        }
        b.run_for(window);
        rows.push(NetOverheadRow {
            protocol: label.into(),
            packets: b.net_stats().total_sent(PacketClass::Control).pkts as i64,
            bytes: b.net_stats().total_sent(PacketClass::Control).bytes as i64,
            formula_packets: fp,
            formula_bytes: fb,
        });
    };
    let nn = u64::from(n);
    run_mode(
        "fan-out (unreliable)",
        Mode::Unreliable,
        format!("N(N-1) = {}", nn * (nn - 1)),
        format!("≈N(N-1)·M = {}", nn * (nn - 1) * msg_bytes as u64),
    );
    run_mode(
        "fan-out + acks",
        Mode::Reliable,
        format!("2N(N-1) = {}", 2 * nn * (nn - 1)),
        format!(">N(N-1)·M = {}", nn * (nn - 1) * msg_bytes as u64),
    );
    run_mode(
        "sequencer 2PC",
        Mode::Sequenced,
        "≈4N² (4 phases)".into(),
        "≫".into(),
    );
    rows
}

// ======================================================================
// E3 — Figure 3: Rainwall throughput and scaling
// ======================================================================

/// One point of Figure 3.
#[derive(Clone, Copy, Debug)]
pub struct Fig3Point {
    /// Gateways in the cluster.
    pub gateways: u32,
    /// Aggregate client goodput, Mbit/s.
    pub mbps: f64,
    /// Scaling factor versus the 1-node run.
    pub scaling: f64,
    /// Group-communication CPU share (50 µs per wake-up), percent.
    pub cpu_pct: f64,
    /// Token-rotation period distribution across the gateways
    /// (raincore-obs histogram, nanoseconds).
    pub rotation: HistSummary,
}

/// Runs the Figure-3 benchmark for one cluster size.
pub fn fig3_point(gateways: u32, secs: u64) -> Fig3Point {
    let cfg = ScenarioCfg {
        gateways,
        clients: 8,
        servers: 8,
        vips: (gateways * 2).max(4),
        // Closed-loop clients: enough downloads in flight to saturate the
        // cluster without over-queuing it (the paper's load generators
        // were tuned per run the same way).
        flows_per_client: gateways + 1,
        ..Default::default()
    };
    let mut s = Scenario::build(cfg).expect("scenario");
    let warm = Time::ZERO + Duration::from_secs(2);
    let end = warm + Duration::from_secs(secs);
    s.cluster.run_until(end);
    let mbps = s.goodput_mbps(warm, end);
    let cpu: f64 = s
        .gateway_ids
        .iter()
        .map(|&g| s.group_comm_cpu_share(g, Duration::from_micros(50), end.since(Time::ZERO)))
        .sum::<f64>()
        / f64::from(gateways);
    let rotation = merged_hist(&s.cluster, |n| &n.obs().token_rotation);
    Fig3Point {
        gateways,
        mbps,
        scaling: 0.0,
        cpu_pct: cpu * 100.0,
        rotation,
    }
}

/// Runs the full Figure-3 sweep (1, 2, 4 gateways by default).
pub fn fig3(sizes: &[u32], secs: u64) -> Vec<Fig3Point> {
    let mut pts: Vec<Fig3Point> = sizes.iter().map(|&g| fig3_point(g, secs)).collect();
    if let Some(base) = pts.first().map(|p| p.mbps) {
        for p in &mut pts {
            p.scaling = p.mbps / base;
        }
    }
    pts
}

// ======================================================================
// E4 — §3.2 fail-over hiccup
// ======================================================================

/// Result of the cable-unplug fail-over experiment.
#[derive(Clone, Debug)]
pub struct FailoverResult {
    /// Time of the unplug.
    pub unplug_at: Time,
    /// Duration of the traffic gap (goodput below half the pre-failure
    /// average). The paper's claim: under two seconds.
    pub gap: Duration,
    /// Aggregate goodput per 100 ms bucket around the event
    /// (bucket index, Mbit/s within that bucket).
    pub series: Vec<(f64, f64)>,
    /// Flows abandoned and retried during the hiccup.
    pub retries: u64,
    /// Token-rotation period distribution across the gateways
    /// (raincore-obs histogram, nanoseconds).
    pub rotation: HistSummary,
    /// Transport failure-on-delivery latency: time from first transmission
    /// to the failure notification that triggers fail-over (nanoseconds).
    pub failover_latency: HistSummary,
    /// 911 token-recovery duration distribution (nanoseconds); empty when
    /// the victim was not holding the token.
    pub recovery: HistSummary,
}

/// Unplugs one gateway's cable mid-download and measures the hiccup.
pub fn failover() -> FailoverResult {
    let cfg = ScenarioCfg {
        gateways: 2,
        clients: 6,
        servers: 6,
        vips: 4,
        ..Default::default()
    };
    let bucket = cfg.bucket;
    let mut s = Scenario::build(cfg).expect("scenario");
    let unplug_at = Time::ZERO + Duration::from_secs(5);
    s.cluster.run_until(unplug_at);
    // Pull the cable of gateway 1 (its only NIC): the simulated
    // equivalent of §3.2's accidental unplug.
    s.cluster.set_nic(Addr::primary(NodeId(1)), false);
    // Rainwall monitors "critical resources such as … the network
    // interfaces" (§3.2): the victim's interface monitor notices the dead
    // link shortly after and the node shuts itself down, so it stops
    // claiming virtual IPs while unreachable.
    let noticed = unplug_at + Duration::from_millis(100);
    s.cluster.run_until(noticed);
    {
        let victim = s.cluster.session_mut(NodeId(1)).expect("victim");
        victim.add_critical_resource("nic0");
        victim.set_resource(noticed, "nic0", false);
    }
    s.cluster.run_until(unplug_at + Duration::from_secs(7));

    let series_raw = s.bucket_series();
    let bpersec = 1_000_000_000 / bucket.as_nanos().max(1);
    let pre_from = (unplug_at.as_nanos() / bucket.as_nanos()).saturating_sub(2 * bpersec);
    let unplug_bucket = unplug_at.as_nanos() / bucket.as_nanos();
    let pre: Vec<u64> = (pre_from..unplug_bucket)
        .map(|b| series_raw.get(&b).copied().unwrap_or(0))
        .collect();
    let pre_avg = pre.iter().sum::<u64>() as f64 / pre.len().max(1) as f64;
    // The gap: consecutive buckets after the unplug below 50 % of the
    // pre-failure average.
    let mut gap_buckets = 0u64;
    let mut b = unplug_bucket;
    loop {
        let v = series_raw.get(&b).copied().unwrap_or(0) as f64;
        if v >= pre_avg * 0.5 {
            break;
        }
        gap_buckets += 1;
        b += 1;
        if gap_buckets > 12 * bpersec {
            break; // never recovered (report a huge gap)
        }
    }
    let to_mbps = |bytes: u64| bytes as f64 * 8.0 / bucket.as_secs_f64() / 1e6;
    let series: Vec<(f64, f64)> = (pre_from..unplug_bucket + 5 * bpersec)
        .map(|b| {
            (
                b as f64 * bucket.as_secs_f64(),
                to_mbps(series_raw.get(&b).copied().unwrap_or(0)),
            )
        })
        .collect();
    FailoverResult {
        unplug_at,
        gap: Duration::from_nanos(gap_buckets * bucket.as_nanos()),
        series,
        retries: s.retries(),
        rotation: merged_hist(&s.cluster, |n| &n.obs().token_rotation),
        failover_latency: merged_hist(&s.cluster, |n| &n.transport_obs().failure_latency),
        recovery: merged_hist(&s.cluster, |n| &n.obs().recovery_911),
    }
}

// ======================================================================
// E5 — hub vs switch medium
// ======================================================================

/// One row of the medium comparison.
#[derive(Clone, Copy, Debug)]
pub struct MediumRow {
    /// Gateways.
    pub gateways: u32,
    /// Aggregate goodput on a switched medium, Mbit/s.
    pub switch_mbps: f64,
    /// Aggregate goodput on a shared hub, Mbit/s.
    pub hub_mbps: f64,
}

/// Compares cluster throughput on switched vs hub media (§4.1's
/// N×100 Mbit/s vs 100 Mbit/s argument).
pub fn medium(sizes: &[u32], secs: u64) -> Vec<MediumRow> {
    let run = |g: u32, kind: MediumKind| -> f64 {
        let mut cfg = ScenarioCfg {
            gateways: g,
            clients: 8,
            servers: 8,
            vips: (g * 2).max(4),
            ..Default::default()
        };
        cfg.cluster.net = match kind {
            MediumKind::Switch => SimNetConfig::fast_ethernet_switch(),
            MediumKind::Hub => SimNetConfig::fast_ethernet_hub(),
        };
        let mut s = Scenario::build(cfg).expect("scenario");
        let warm = Time::ZERO + Duration::from_secs(2);
        let end = warm + Duration::from_secs(secs);
        s.cluster.run_until(end);
        s.goodput_mbps(warm, end)
    };
    sizes
        .iter()
        .map(|&g| MediumRow {
            gateways: g,
            switch_mbps: run(g, MediumKind::Switch),
            hub_mbps: run(g, MediumKind::Hub),
        })
        .collect()
}

// ======================================================================
// A1/A2 — token frequency and delivery-mode latency ablations
// ======================================================================

/// Measures mean multicast delivery latency (injection at node 0 →
/// delivery at the farthest node) and the task-switch rate, at a given
/// token rate.
pub fn latency_at_rate(n: u32, l: f64, mode: DeliveryMode, samples: u32) -> (f64, f64) {
    let mut c = Cluster::founding(n, proto_cfg(n, l)).expect("cluster");
    c.run_for(Duration::from_secs(1));
    // Probe at the originator's first successor: it sees an agreed
    // message on the very next hop, but must wait the extra round for a
    // safe one — the position where §2.6's cost difference is visible.
    let probe = NodeId(1);
    let mut total = Duration::ZERO;
    for k in 0..samples {
        let sent_at = c.now();
        let marker = Bytes::from(vec![k as u8; 8]);
        c.multicast(NodeId(0), mode, marker).expect("multicast");
        let before = c.deliveries(probe).len();
        let mut delivered_at = None;
        let deadline = sent_at + Duration::from_secs(10);
        c.run_until_with(deadline, |c| {
            if delivered_at.is_none() && c.deliveries(probe).len() > before {
                delivered_at = Some(c.now());
            }
        });
        total += delivered_at.expect("delivered").since(sent_at);
        // run_until_with runs to the deadline; measure switches below.
    }
    let lat = total.as_secs_f64() / f64::from(samples);
    let elapsed = c.now().since(Time::ZERO).as_secs_f64();
    let switches = c.metrics(NodeId(0)).task_switches as f64 / elapsed;
    (lat, switches)
}

// ======================================================================
// A3 — redundant links ablation
// ======================================================================

/// Outcome of unplugging one NIC of a member, with and without a
/// redundant second link.
#[derive(Clone, Debug)]
pub struct RedundantRow {
    /// NICs per node.
    pub nics: u8,
    /// Membership-change events observed at node 0 in the 5 s after the
    /// unplug (0 = the failure was masked).
    pub membership_changes: usize,
    /// Whether the cluster converged back to full membership.
    pub full_membership: bool,
}

/// §2.1 ablation: does a redundant physical link mask a cable pull?
pub fn redundant_links(nics: u8) -> RedundantRow {
    let mut cfg = proto_cfg(4, 10.0);
    cfg.nics = nics;
    cfg.transport.max_retries = 2;
    let mut c = Cluster::founding(4, cfg).expect("cluster");
    c.run_for(Duration::from_secs(1));
    let _ = c.take_events(NodeId(0));
    c.set_nic(Addr::new(NodeId(1), 0), false);
    c.run_for(Duration::from_secs(5));
    let changes = c
        .take_events(NodeId(0))
        .iter()
        .filter(|e| matches!(e, raincore_session::SessionEvent::MembershipChanged { .. }))
        .count();
    RedundantRow {
        nics,
        membership_changes: changes,
        full_membership: c.membership_converged()
            && c.live_members().len() == 4
            && c.session(NodeId(0)).unwrap().ring().len() == 4,
    }
}

// ======================================================================
// A4 — failure-detection ablation
// ======================================================================

/// Outcome of a member crash under a given detection mode.
#[derive(Clone, Debug)]
pub struct DetectionRow {
    /// Mode label.
    pub mode: &'static str,
    /// Time from crash to converged (N-1) membership; `None` = did not
    /// converge within the 10 s budget.
    pub convergence: Option<Duration>,
    /// Token rounds/s at node 0 in the 2 s after the crash.
    pub rounds_after: f64,
}

/// §2.2 ablation: aggressive failure detection vs timeout-only.
pub fn detection(mode: raincore_types::config::DetectionMode) -> DetectionRow {
    let mut cfg = proto_cfg(4, 10.0);
    cfg.session.detection = mode;
    let mut c = Cluster::founding(4, cfg).expect("cluster");
    c.run_for(Duration::from_secs(1));
    c.crash(NodeId(2));
    let t_crash = c.now();
    let mut converged_at: Option<Time> = None;
    c.run_until_with(t_crash + Duration::from_secs(10), |c| {
        if converged_at.is_none() && c.live_members().len() == 3 && c.membership_converged() {
            converged_at = Some(c.now());
        }
    });
    // Token round rate in the 2 s window after the crash.
    let t0 = c.metrics(NodeId(0)).tokens_received;
    c.run_for(Duration::from_secs(2));
    let rounds_after = (c.metrics(NodeId(0)).tokens_received - t0) as f64 / 2.0;
    DetectionRow {
        mode: match mode {
            raincore_types::config::DetectionMode::Aggressive => "aggressive",
            raincore_types::config::DetectionMode::TimeoutOnly => "timeout-only",
        },
        convergence: converged_at.map(|t| t.since(t_crash)),
        rounds_after,
    }
}

// ======================================================================
// E6 — §2.5 quiescent-period membership agreement
// ======================================================================

/// Outcome of one disturbance burst.
#[derive(Clone, Debug)]
pub struct QuiescentRow {
    /// Simultaneous crashes in the burst.
    pub crashes: u32,
    /// Time from the burst to converged (N-k) membership.
    pub shrink_convergence: Option<Duration>,
    /// Time from restarting all victims (as joiners) back to full
    /// membership.
    pub rejoin_convergence: Option<Duration>,
}

/// §2.5: once disturbances stop, how long until every member agrees on
/// the membership? Crashes `k` of `n` members at once, measures the
/// convergence time, then restarts them all and measures re-convergence.
pub fn quiescent(n: u32, crashes: u32) -> QuiescentRow {
    let mut c = Cluster::founding(n, proto_cfg(n, 10.0)).expect("cluster");
    c.run_for(Duration::from_secs(1));
    // Burst: kill k members at the same instant (never node 0, so ids
    // stay deterministic; mixture of holder/non-holder is up to fate).
    let victims: Vec<NodeId> = (1..=crashes).map(NodeId).collect();
    for &v in &victims {
        c.crash(v);
    }
    let t0 = c.now();
    let mut shrink = None;
    c.run_until_with(t0 + Duration::from_secs(10), |c| {
        if shrink.is_none()
            && c.live_members().len() == (n - crashes) as usize
            && c.membership_converged()
        {
            shrink = Some(c.now().since(t0));
        }
    });
    // Quiet period, then everyone returns at once.
    for &v in &victims {
        c.restart(v, raincore_session::StartMode::Joining)
            .expect("restart");
    }
    let t1 = c.now();
    let mut rejoin = None;
    c.run_until_with(t1 + Duration::from_secs(20), |c| {
        if rejoin.is_none() && c.live_members().len() == n as usize && c.membership_converged() {
            rejoin = Some(c.now().since(t1));
        }
    });
    QuiescentRow {
        crashes,
        shrink_convergence: shrink,
        rejoin_convergence: rejoin,
    }
}

// ======================================================================
// A5 — hierarchical scalability ablation (§5 future work)
// ======================================================================

/// One row of the flat-vs-hierarchical comparison at total size `n`.
#[derive(Clone, Debug)]
pub struct HierRow {
    /// Total member count.
    pub n: u32,
    /// Flat ring: mean multicast latency to the farthest member (s).
    pub flat_latency: f64,
    /// Flat ring: task switches per second per node.
    pub flat_switches: f64,
    /// Hierarchy (`groups × group_size`): global multicast latency (s).
    pub hier_latency: f64,
    /// Hierarchy: task switches per second per *non-leader* member.
    pub hier_switches: f64,
    /// Hierarchy: task switches per second for a *leader* (both stacks).
    pub hier_leader_switches: f64,
}

/// Compares a flat ring of `n` members with a `groups × group_size`
/// hierarchy (same token hold time in every ring).
pub fn hier_vs_flat(groups: u32, group_size: u32, samples: u32) -> HierRow {
    use raincore_hier::{HierCluster, HierConfig};
    let n = groups * group_size;
    let hold = Duration::from_millis(2);

    // --- Flat ring ---
    let mut cfg = ClusterConfig {
        session: raincore_types::SessionConfig::for_cluster(n),
        ..Default::default()
    };
    cfg.session.token_hold = hold;
    cfg.session.hungry_timeout = hold
        .saturating_mul(u64::from(n) * 8)
        .max(Duration::from_millis(200));
    cfg.transport.retry_timeout = Duration::from_millis(10);
    let mut flat = Cluster::founding(n, cfg).expect("cluster");
    flat.run_for(Duration::from_secs(1));
    let probe = NodeId(n / 2); // roughly farthest from node 0 on the ring
    let mut total = Duration::ZERO;
    for k in 0..samples {
        let sent = flat.now();
        flat.multicast(NodeId(0), DeliveryMode::Agreed, Bytes::from(vec![k as u8]))
            .unwrap();
        let before = flat.deliveries(probe).len();
        let mut at = None;
        flat.run_until_with(sent + Duration::from_secs(10), |c| {
            if at.is_none() && c.deliveries(probe).len() > before {
                at = Some(c.now());
            }
        });
        total += at.expect("delivered").since(sent);
    }
    let flat_latency = total.as_secs_f64() / f64::from(samples);
    let elapsed = flat.now().since(Time::ZERO).as_secs_f64();
    let flat_switches = flat.metrics(NodeId(1)).task_switches as f64 / elapsed;

    // --- Hierarchy ---
    let mut h = HierCluster::new(HierConfig {
        groups,
        group_size,
        token_hold: hold,
        ..Default::default()
    })
    .expect("hier");
    h.run_for(Duration::from_secs(1));
    // Probe in a *different* group from the origin.
    let probe = NodeId(group_size + 1);
    let mut total = Duration::ZERO;
    for k in 0..samples {
        let sent = h.now();
        h.multicast_global(NodeId(0), Bytes::from(vec![k as u8]))
            .unwrap();
        let before = h.global_deliveries(probe).len();
        loop {
            h.run_for(Duration::from_millis(1));
            if h.global_deliveries(probe).len() > before {
                break;
            }
            if h.now().since(sent) > Duration::from_secs(10) {
                panic!("hier delivery timed out");
            }
        }
        total += h.now().since(sent);
    }
    let hier_latency = total.as_secs_f64() / f64::from(samples);
    let elapsed = h.now().since(Time::ZERO).as_secs_f64();
    let hier_switches = h.task_switches(NodeId(1)) as f64 / elapsed;
    let hier_leader_switches = h.task_switches(NodeId(0)) as f64 / elapsed;

    HierRow {
        n,
        flat_latency,
        flat_switches,
        hier_latency,
        hier_switches,
        hier_leader_switches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taskswitch_raincore_tracks_l_not_mn() {
        let row = taskswitch(4, 20, 10.0, 2);
        // Raincore ≈ L per node regardless of M; baselines ≈ M·(N-1)+.
        assert!(
            row.raincore < 3.0 * row.l,
            "raincore {:.1} vs L {}",
            row.raincore,
            row.l
        );
        assert!(
            row.reliable > 3.0 * row.raincore,
            "reliable fan-out ({:.0}) must dwarf raincore ({:.0})",
            row.reliable,
            row.raincore
        );
        assert!(row.sequenced_max >= row.reliable * 0.8);
    }

    #[test]
    fn netoverhead_token_marginal_packets_near_zero() {
        let rows = netoverhead(4, 1024);
        let rc = &rows[0];
        assert!(rc.protocol.contains("raincore"));
        assert!(
            rc.packets.abs() <= 8,
            "piggybacking adds (almost) no packets, got {}",
            rc.packets
        );
        // Marginal bytes ≈ N²·M = 16 KiB (plus seen-list overhead).
        assert!(rc.bytes > 12_000 && rc.bytes < 40_000, "bytes {}", rc.bytes);
        let fanout = &rows[1];
        assert_eq!(fanout.packets, 12, "N(N-1) with N=4");
        let acked = &rows[2];
        assert_eq!(acked.packets, 24, "2N(N-1) with N=4");
    }

    #[test]
    fn latency_decreases_with_token_rate() {
        let (slow, _) = latency_at_rate(4, 2.0, DeliveryMode::Agreed, 4);
        let (fast, _) = latency_at_rate(4, 50.0, DeliveryMode::Agreed, 4);
        assert!(fast < slow, "L=50 ({fast:.4}s) must beat L=2 ({slow:.4}s)");
    }

    #[test]
    fn safe_slower_than_agreed() {
        let (agreed, _) = latency_at_rate(4, 20.0, DeliveryMode::Agreed, 4);
        let (safe, _) = latency_at_rate(4, 20.0, DeliveryMode::Safe, 4);
        assert!(safe > agreed, "safe {safe:.4}s vs agreed {agreed:.4}s");
    }

    #[test]
    fn redundant_link_masks_cable_pull() {
        let single = redundant_links(1);
        let dual = redundant_links(2);
        assert!(
            dual.full_membership,
            "dual-link cluster stays whole: {dual:?}"
        );
        assert_eq!(dual.membership_changes, 0, "failure fully masked");
        assert!(
            single.membership_changes > 0,
            "single-link cluster must churn: {single:?}"
        );
    }

    #[test]
    fn aggressive_detection_converges_timeout_only_does_not() {
        use raincore_types::config::DetectionMode;
        let fast = detection(DetectionMode::Aggressive);
        assert!(fast.convergence.is_some(), "{fast:?}");
        assert!(
            fast.convergence.unwrap() < Duration::from_secs(1),
            "{fast:?}"
        );
        let slow = detection(DetectionMode::TimeoutOnly);
        assert!(
            slow.convergence.is_none(),
            "timeout-only never edits membership: {slow:?}"
        );
        assert!(
            slow.rounds_after < fast.rounds_after,
            "rounds degrade: {slow:?} vs {fast:?}"
        );
    }
}
