//! Lock operations and their multicast encoding.
//!
//! Lock ops travel as ordinary Raincore multicast payloads, tagged with a
//! magic prefix so they can share the group with application messages.

use raincore_types::wire::{Reader, WireDecode, WireEncode, WireError, WireResult, Writer};
use raincore_types::NodeId;

/// Magic prefix identifying a lock-manager payload.
pub const MAGIC: &[u8; 4] = b"RCLK";

/// A replicated lock-table operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LockOp {
    /// `node` requests `lock`; granted immediately if free, else queued.
    Acquire {
        /// Lock name.
        lock: String,
        /// Requesting node.
        node: NodeId,
    },
    /// `node` releases `lock`; the head waiter (if any) is granted.
    Release {
        /// Lock name.
        lock: String,
        /// Releasing node.
        node: NodeId,
    },
}

impl LockOp {
    /// The lock name this op refers to.
    pub fn lock_name(&self) -> &str {
        match self {
            LockOp::Acquire { lock, .. } | LockOp::Release { lock, .. } => lock,
        }
    }

    /// The node performing the op.
    pub fn node(&self) -> NodeId {
        match self {
            LockOp::Acquire { node, .. } | LockOp::Release { node, .. } => *node,
        }
    }

    /// Encodes the op as a multicast payload (magic-prefixed).
    pub fn to_payload(&self) -> bytes::Bytes {
        let mut w = Writer::new();
        for &b in MAGIC {
            w.put_u8(b);
        }
        self.encode(&mut w);
        w.finish()
    }

    /// Decodes a multicast payload; `None` if it is not a lock op.
    pub fn from_payload(payload: &[u8]) -> Option<LockOp> {
        let rest = payload.strip_prefix(&MAGIC[..])?;
        let mut r = Reader::new(rest);
        let op = LockOp::decode(&mut r).ok()?;
        r.expect_end().ok()?;
        Some(op)
    }
}

impl WireEncode for LockOp {
    fn encode(&self, w: &mut Writer) {
        match self {
            LockOp::Acquire { lock, node } => {
                w.put_u8(0);
                w.put_str(lock);
                node.encode(w);
            }
            LockOp::Release { lock, node } => {
                w.put_u8(1);
                w.put_str(lock);
                node.encode(w);
            }
        }
    }
}

impl WireDecode for LockOp {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        match r.get_u8()? {
            0 => Ok(LockOp::Acquire {
                lock: r.get_str()?,
                node: NodeId::decode(r)?,
            }),
            1 => Ok(LockOp::Release {
                lock: r.get_str()?,
                node: NodeId::decode(r)?,
            }),
            tag => Err(WireError::BadTag { ty: "LockOp", tag }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_round_trip() {
        let op = LockOp::Acquire {
            lock: "table:users".into(),
            node: NodeId(3),
        };
        let p = op.to_payload();
        assert_eq!(LockOp::from_payload(&p), Some(op));
        let op = LockOp::Release {
            lock: "x".into(),
            node: NodeId(0),
        };
        assert_eq!(LockOp::from_payload(&op.to_payload()), Some(op));
    }

    #[test]
    fn foreign_payloads_rejected() {
        assert_eq!(LockOp::from_payload(b"hello"), None);
        assert_eq!(LockOp::from_payload(b""), None);
        assert_eq!(LockOp::from_payload(b"RCLK"), None); // truncated after magic
                                                         // Magic + trailing garbage after a valid op is also rejected.
        let mut p = LockOp::Acquire {
            lock: "a".into(),
            node: NodeId(1),
        }
        .to_payload()
        .to_vec();
        p.push(0xff);
        assert_eq!(LockOp::from_payload(&p), None);
    }

    #[test]
    fn accessors() {
        let op = LockOp::Acquire {
            lock: "l".into(),
            node: NodeId(7),
        };
        assert_eq!(op.lock_name(), "l");
        assert_eq!(op.node(), NodeId(7));
    }
}
