//! The Raincore distributed lock manager (§2.7).
//!
//! The paper: "a Raincore distributed lock manager is implemented as part
//! of the Raincore Distributed Data Service, using the mutual exclusion
//! service to acquire and release data locks. The data locks …, comparing
//! to this master-lock, can be associated with one or more shared data
//! items, and can be owned by a node without requiring the node to remain
//! in the EATING state."
//!
//! [`LockManager`] realizes that as a *replicated lock table*: lock and
//! unlock operations are reliable multicasts (they ride the token while
//! the requester holds it — i.e. they are injected under the mutual
//! exclusion the token provides), and because Raincore multicast is
//! atomic with agreed total order, every member processes the same
//! operations in the same order and the tables never diverge. A grant
//! therefore needs no extra round-trips, and — unlike the master lock —
//! holding a data lock does not pin the token.
//!
//! Fault tolerance: when the membership removes a node, every replica
//! releases the locks it owned and removes it from waiter queues, in the
//! same deterministic way, so locks owned by crashed nodes free
//! themselves.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod manager;
pub mod ops;

pub use manager::{LockEvent, LockManager, LockTableStats};
pub use ops::LockOp;
