//! The replicated lock table.

use crate::ops::LockOp;
use raincore_session::{SessionEvent, SessionNode};
use raincore_types::{DeliveryMode, NodeId, Result};
use std::collections::{BTreeMap, VecDeque};

/// Events surfaced by the lock manager. Emitted identically (and in the
/// same order) on every member, since they are a pure function of the
/// agreed delivery order; filter on `owner == me` for local interest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LockEvent {
    /// `owner` now holds `lock`.
    Granted {
        /// Lock name.
        lock: String,
        /// New owner.
        owner: NodeId,
    },
    /// `owner` released (or lost, if it crashed) `lock`.
    Released {
        /// Lock name.
        lock: String,
        /// Previous owner.
        owner: NodeId,
        /// True when the release was forced by a membership removal.
        forced: bool,
    },
}

#[derive(Debug, Default, Clone)]
struct LockState {
    owner: Option<NodeId>,
    /// Reentrant acquisitions by the owner.
    depth: u32,
    waiters: VecDeque<NodeId>,
}

/// Summary counters for tests and monitoring.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LockTableStats {
    /// Grants performed (including re-grants to waiters).
    pub grants: u64,
    /// Voluntary releases.
    pub releases: u64,
    /// Locks force-released because their owner left the membership.
    pub forced_releases: u64,
}

/// A replica of the distributed lock table. One per member, fed with the
/// member's session events via [`LockManager::apply`]; lock/unlock
/// requests go out as multicasts via [`LockManager::lock`] /
/// [`LockManager::unlock`].
#[derive(Debug)]
pub struct LockManager {
    me: NodeId,
    table: BTreeMap<String, LockState>,
    events: VecDeque<LockEvent>,
    stats: LockTableStats,
}

impl LockManager {
    /// Creates the replica for node `me`.
    pub fn new(me: NodeId) -> Self {
        LockManager {
            me,
            table: BTreeMap::new(),
            events: VecDeque::new(),
            stats: LockTableStats::default(),
        }
    }

    /// Requests `lock`: multicasts an acquire op. The grant arrives later
    /// as [`LockEvent::Granted`] with `owner == me` (same token round).
    /// Reentrant: acquiring a lock already held by `me` deepens it.
    pub fn lock(&mut self, session: &mut SessionNode, lock: &str) -> Result<()> {
        let op = LockOp::Acquire {
            lock: lock.to_string(),
            node: self.me,
        };
        session.multicast(DeliveryMode::Agreed, op.to_payload())?;
        Ok(())
    }

    /// Releases `lock`: multicasts a release op. Releasing a lock not
    /// held by `me` is ignored by every replica (idempotent).
    pub fn unlock(&mut self, session: &mut SessionNode, lock: &str) -> Result<()> {
        let op = LockOp::Release {
            lock: lock.to_string(),
            node: self.me,
        };
        session.multicast(DeliveryMode::Agreed, op.to_payload())?;
        Ok(())
    }

    /// Feeds one session event into the replica. Call this with *every*
    /// event from the session node, in order; non-lock events are either
    /// membership changes (owner crash handling) or ignored.
    pub fn apply(&mut self, event: &SessionEvent) {
        match event {
            SessionEvent::Delivery(d) => {
                if let Some(op) = LockOp::from_payload(&d.payload) {
                    self.apply_op(&op);
                }
            }
            SessionEvent::MembershipChanged { removed, .. } => {
                for node in removed {
                    self.purge_node(*node);
                }
            }
            // Enumerated so a new session event is a compile error here:
            // every variant must be consciously handled or ignored.
            SessionEvent::MulticastAtomic { .. }
            | SessionEvent::MasterAcquired
            | SessionEvent::MasterReleased
            | SessionEvent::Starving
            | SessionEvent::TokenRegenerated { .. }
            | SessionEvent::Merged { .. }
            | SessionEvent::ShutDown { .. } => {}
        }
    }

    fn apply_op(&mut self, op: &LockOp) {
        match op {
            LockOp::Acquire { lock, node } => {
                let st = self.table.entry(lock.clone()).or_default();
                match st.owner {
                    None => {
                        st.owner = Some(*node);
                        st.depth = 1;
                        self.stats.grants += 1;
                        self.events.push_back(LockEvent::Granted {
                            lock: lock.clone(),
                            owner: *node,
                        });
                    }
                    Some(owner) if owner == *node => {
                        st.depth += 1; // reentrant
                    }
                    Some(_) => {
                        if !st.waiters.contains(node) {
                            st.waiters.push_back(*node);
                        }
                    }
                }
            }
            LockOp::Release { lock, node } => {
                let Some(st) = self.table.get_mut(lock) else {
                    return;
                };
                if st.owner != Some(*node) {
                    // Not the owner (or a stale release): drop any queued
                    // interest instead.
                    st.waiters.retain(|w| w != node);
                    return;
                }
                if st.depth > 1 {
                    st.depth -= 1;
                    return;
                }
                self.stats.releases += 1;
                self.events.push_back(LockEvent::Released {
                    lock: lock.clone(),
                    owner: *node,
                    forced: false,
                });
                self.grant_next(lock.clone());
            }
        }
    }

    /// Forced cleanup when `node` leaves the membership: its locks are
    /// released and it disappears from every waiter queue.
    fn purge_node(&mut self, node: NodeId) {
        let names: Vec<String> = self.table.keys().cloned().collect();
        for lock in names {
            let Some(st) = self.table.get_mut(&lock) else {
                continue;
            };
            st.waiters.retain(|w| *w != node);
            if st.owner == Some(node) {
                self.stats.forced_releases += 1;
                self.events.push_back(LockEvent::Released {
                    lock: lock.clone(),
                    owner: node,
                    forced: true,
                });
                self.grant_next(lock);
            }
        }
    }

    fn grant_next(&mut self, lock: String) {
        let Some(st) = self.table.get_mut(&lock) else {
            return;
        };
        match st.waiters.pop_front() {
            Some(next) => {
                st.owner = Some(next);
                st.depth = 1;
                self.stats.grants += 1;
                self.events
                    .push_back(LockEvent::Granted { lock, owner: next });
            }
            None => {
                st.owner = None;
                st.depth = 0;
            }
        }
    }

    /// Current owner of `lock`, if any.
    pub fn owner(&self, lock: &str) -> Option<NodeId> {
        self.table.get(lock).and_then(|s| s.owner)
    }

    /// True if this replica's node holds `lock`.
    pub fn held_by_me(&self, lock: &str) -> bool {
        self.owner(lock) == Some(self.me)
    }

    /// Nodes queued behind the owner of `lock`.
    pub fn waiters(&self, lock: &str) -> Vec<NodeId> {
        self.table
            .get(lock)
            .map(|s| s.waiters.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Drains one lock event.
    pub fn poll_event(&mut self) -> Option<LockEvent> {
        self.events.pop_front()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> LockTableStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acquire(lm: &mut LockManager, lock: &str, node: u32) {
        lm.apply_op(&LockOp::Acquire {
            lock: lock.into(),
            node: NodeId(node),
        });
    }

    fn release(lm: &mut LockManager, lock: &str, node: u32) {
        lm.apply_op(&LockOp::Release {
            lock: lock.into(),
            node: NodeId(node),
        });
    }

    fn drain(lm: &mut LockManager) -> Vec<LockEvent> {
        let mut out = vec![];
        while let Some(e) = lm.poll_event() {
            out.push(e);
        }
        out
    }

    #[test]
    fn fifo_grant_order() {
        let mut lm = LockManager::new(NodeId(0));
        acquire(&mut lm, "l", 1);
        acquire(&mut lm, "l", 2);
        acquire(&mut lm, "l", 3);
        assert_eq!(lm.owner("l"), Some(NodeId(1)));
        assert_eq!(lm.waiters("l"), vec![NodeId(2), NodeId(3)]);
        release(&mut lm, "l", 1);
        assert_eq!(lm.owner("l"), Some(NodeId(2)));
        release(&mut lm, "l", 2);
        assert_eq!(lm.owner("l"), Some(NodeId(3)));
        release(&mut lm, "l", 3);
        assert_eq!(lm.owner("l"), None);
        let evs = drain(&mut lm);
        let grants: Vec<NodeId> = evs
            .iter()
            .filter_map(|e| match e {
                LockEvent::Granted { owner, .. } => Some(*owner),
                _ => None,
            })
            .collect();
        assert_eq!(grants, vec![NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn reentrant_depth() {
        let mut lm = LockManager::new(NodeId(1));
        acquire(&mut lm, "l", 1);
        acquire(&mut lm, "l", 1);
        release(&mut lm, "l", 1);
        assert!(lm.held_by_me("l"), "still held after matching one release");
        release(&mut lm, "l", 1);
        assert_eq!(lm.owner("l"), None);
    }

    #[test]
    fn non_owner_release_is_ignored_but_cancels_waiting() {
        let mut lm = LockManager::new(NodeId(0));
        acquire(&mut lm, "l", 1);
        acquire(&mut lm, "l", 2);
        release(&mut lm, "l", 2); // waiter gives up
        assert_eq!(lm.owner("l"), Some(NodeId(1)));
        assert!(lm.waiters("l").is_empty());
        release(&mut lm, "l", 9); // total stranger
        assert_eq!(lm.owner("l"), Some(NodeId(1)));
    }

    #[test]
    fn duplicate_acquire_while_waiting_not_queued_twice() {
        let mut lm = LockManager::new(NodeId(0));
        acquire(&mut lm, "l", 1);
        acquire(&mut lm, "l", 2);
        acquire(&mut lm, "l", 2);
        assert_eq!(lm.waiters("l"), vec![NodeId(2)]);
    }

    #[test]
    fn owner_crash_forces_release_and_regrants() {
        let mut lm = LockManager::new(NodeId(0));
        acquire(&mut lm, "a", 1);
        acquire(&mut lm, "a", 2);
        acquire(&mut lm, "b", 1);
        drain(&mut lm);
        lm.apply(&SessionEvent::MembershipChanged {
            ring: raincore_types::Ring::from([0, 2]),
            added: vec![],
            removed: vec![NodeId(1)],
        });
        assert_eq!(lm.owner("a"), Some(NodeId(2)), "waiter inherited");
        assert_eq!(lm.owner("b"), None, "no waiter → free");
        let evs = drain(&mut lm);
        assert!(evs.contains(&LockEvent::Released {
            lock: "a".into(),
            owner: NodeId(1),
            forced: true
        }));
        assert!(evs.contains(&LockEvent::Released {
            lock: "b".into(),
            owner: NodeId(1),
            forced: true
        }));
        assert_eq!(lm.stats().forced_releases, 2);
    }

    #[test]
    fn crashed_waiter_purged_from_queue() {
        let mut lm = LockManager::new(NodeId(0));
        acquire(&mut lm, "l", 1);
        acquire(&mut lm, "l", 2);
        acquire(&mut lm, "l", 3);
        lm.apply(&SessionEvent::MembershipChanged {
            ring: raincore_types::Ring::from([0, 1, 3]),
            added: vec![],
            removed: vec![NodeId(2)],
        });
        release(&mut lm, "l", 1);
        assert_eq!(lm.owner("l"), Some(NodeId(3)), "skipped the dead waiter");
    }

    #[test]
    fn replicas_agree_given_same_event_sequence() {
        let ops = vec![
            LockOp::Acquire {
                lock: "x".into(),
                node: NodeId(1),
            },
            LockOp::Acquire {
                lock: "x".into(),
                node: NodeId(2),
            },
            LockOp::Acquire {
                lock: "y".into(),
                node: NodeId(2),
            },
            LockOp::Release {
                lock: "x".into(),
                node: NodeId(1),
            },
            LockOp::Acquire {
                lock: "x".into(),
                node: NodeId(3),
            },
            LockOp::Release {
                lock: "x".into(),
                node: NodeId(2),
            },
        ];
        let run = |me: u32| {
            let mut lm = LockManager::new(NodeId(me));
            for op in &ops {
                lm.apply_op(op);
            }
            let mut evs = vec![];
            while let Some(e) = lm.poll_event() {
                evs.push(e);
            }
            (lm.owner("x"), lm.owner("y"), evs)
        };
        let a = run(0);
        let b = run(5);
        assert_eq!(a, b, "replicas are a pure function of the op sequence");
        assert_eq!(a.0, Some(NodeId(3)));
    }
}
