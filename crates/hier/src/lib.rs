//! Hierarchical Raincore — the paper's §5 scalability extension.
//!
//! "The Group Communication Protocols are being extended to address more
//! challenging scenarios. For example, we are currently working on the
//! hierarchical design that extends the scalability of the protocol."
//!
//! A flat token ring's round time grows linearly with the member count:
//! with `N` nodes at hold time `h`, a multicast waits `O(N·h)` to
//! circulate, and the hungry timeout (and with it failure recovery) must
//! scale with `N`. The hierarchical design splits `N = G × K` nodes into
//! `G` **leaf rings** of `K` nodes. The **leader** of each leaf ring
//! (its lowest member) also runs a second session stack that is a member
//! of one **top ring** of `G` leaders.
//!
//! Global multicast is a two-stage relay with a strict delivery rule
//! that preserves *total order across the whole hierarchy*:
//!
//! 1. the originator multicasts an UP-stage envelope in its leaf ring;
//! 2. its leader forwards the envelope into the top ring;
//! 3. every leader delivers the top-ring multicast — the **top ring's
//!    agreed order is the global order** — and re-injects the envelope
//!    DOWN into its own leaf ring;
//! 4. members deliver only DOWN-stage envelopes, deduplicated by
//!    `(origin, seq)`.
//!
//! Every member (including the origin's own group) therefore delivers in
//! the top ring's order. The cost is one extra ring traversal of
//! latency for the origin's own group; the win is that each node's token
//! wake-up rate is set by its *leaf* ring size `K` (leaders additionally
//! pay the top ring of size `G`), not by `N` — measured by the
//! `exp_ablation_hier` experiment.
//!
//! Leaf groups are kept from merging with each other by giving each
//! member an eligible membership restricted to its own leaf ring (§2.4's
//! Eligible Membership doing double duty as a partition *boundary*).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod envelope;
pub mod hcluster;

pub use envelope::{unwrap_global, wrap_global, Stage};
pub use hcluster::{HierCluster, HierConfig};
