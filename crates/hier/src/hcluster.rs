//! The hierarchical cluster harness.
//!
//! Builds `groups × group_size` leaf members plus one *top persona* per
//! group — the second session stack the leaf leader runs as a member of
//! the leader ring. In the simulator a persona is a separate host
//! (co-located with its leader in a real deployment); the relay between
//! a leader's two stacks is performed by the harness pump, which runs
//! the simulation in small slices and moves envelopes between rings at
//! slice boundaries.

use crate::envelope::{unwrap_global, wrap_global, Stage};
use bytes::Bytes;
use raincore_session::StartMode;
use raincore_sim::{Cluster, ClusterBuilder, ClusterConfig};
use raincore_types::{
    DeliveryMode, Duration, NodeId, OriginSeq, Result, Ring, SessionConfig, Time, TransportConfig,
};
use std::collections::BTreeMap;

/// Node-id offset of the top-ring personas.
pub const TOP_BASE: u32 = 100_000;

/// Hierarchy parameters.
#[derive(Clone, Debug)]
pub struct HierConfig {
    /// Number of leaf groups (`G`).
    pub groups: u32,
    /// Members per leaf group (`K`); total members `N = G·K`.
    pub group_size: u32,
    /// Token hold time used in every ring (leaf and top).
    pub token_hold: Duration,
    /// Transport configuration.
    pub transport: TransportConfig,
    /// Network model.
    pub net: raincore_net::SimNetConfig,
    /// Pump slice: envelopes are relayed between rings at most this long
    /// after they become available (keep it well under a token round).
    pub relay_slice: Duration,
}

impl Default for HierConfig {
    fn default() -> Self {
        HierConfig {
            groups: 4,
            group_size: 4,
            token_hold: Duration::from_millis(2),
            transport: TransportConfig {
                retry_timeout: Duration::from_millis(10),
                ..Default::default()
            },
            net: raincore_net::SimNetConfig::default(),
            relay_slice: Duration::from_millis(1),
        }
    }
}

/// A hierarchical Raincore deployment under simulation. See the crate
/// docs for the protocol.
pub struct HierCluster {
    cluster: Cluster,
    cfg: HierConfig,
    next_seq: BTreeMap<NodeId, OriginSeq>,
    /// How many leaf deliveries each leader has already relayed upward.
    leaf_scanned: BTreeMap<NodeId, usize>,
    /// How many top deliveries each persona has already injected downward.
    top_scanned: BTreeMap<NodeId, usize>,
}

impl HierCluster {
    /// Builds the hierarchy at t = 0.
    pub fn new(cfg: HierConfig) -> Result<HierCluster> {
        let ccfg = ClusterConfig {
            transport: cfg.transport.clone(),
            net: cfg.net.clone(),
            ..Default::default()
        };
        let mut builder = ClusterBuilder::new(ccfg);

        let base_session = |eligible: Vec<NodeId>| SessionConfig {
            token_hold: cfg.token_hold,
            hungry_timeout: cfg
                .token_hold
                .saturating_mul(u64::from(cfg.group_size.max(cfg.groups)) * 8)
                .max(Duration::from_millis(200)),
            starving_retry: Duration::from_millis(100),
            beacon_period: Duration::from_millis(200),
            eligible,
            ..SessionConfig::default()
        };

        // Leaf groups: ids [g·K, (g+1)·K); eligible restricted to the
        // group so leaf rings never merge across groups.
        for g in 0..cfg.groups {
            let ids: Vec<NodeId> = (0..cfg.group_size)
                .map(|k| NodeId(g * cfg.group_size + k))
                .collect();
            let ring = Ring::from_iter(ids.iter().copied());
            for &id in &ids {
                builder = builder.member_with(
                    id,
                    StartMode::Founding(ring.clone()),
                    base_session(ids.clone()),
                );
            }
        }
        // Top ring: one persona per group leader.
        let top_ids: Vec<NodeId> = (0..cfg.groups).map(|g| NodeId(TOP_BASE + g)).collect();
        let top_ring = Ring::from_iter(top_ids.iter().copied());
        for &id in &top_ids {
            builder = builder.member_with(
                id,
                StartMode::Founding(top_ring.clone()),
                base_session(top_ids.clone()),
            );
        }
        Ok(HierCluster {
            cluster: builder.build()?,
            cfg,
            next_seq: BTreeMap::new(),
            leaf_scanned: BTreeMap::new(),
            top_scanned: BTreeMap::new(),
        })
    }

    /// Ids of all leaf members.
    pub fn member_ids(&self) -> Vec<NodeId> {
        (0..self.cfg.groups * self.cfg.group_size)
            .map(NodeId)
            .collect()
    }

    /// The leaf group index of a member.
    pub fn group_of(&self, member: NodeId) -> u32 {
        member.raw() / self.cfg.group_size
    }

    /// The leaf leader of a group (its lowest member).
    pub fn leader_of(&self, group: u32) -> NodeId {
        NodeId(group * self.cfg.group_size)
    }

    /// The top-ring persona of a group's leader.
    pub fn persona_of(&self, group: u32) -> NodeId {
        NodeId(TOP_BASE + group)
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.cluster.now()
    }

    /// Read access to the underlying flat cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Mutable access to the underlying flat cluster (fault injection).
    pub fn cluster_mut(&mut self) -> &mut Cluster {
        &mut self.cluster
    }

    /// Originates a global (whole-hierarchy) multicast from a leaf
    /// member.
    pub fn multicast_global(&mut self, from: NodeId, payload: Bytes) -> Result<OriginSeq> {
        let seq = *self.next_seq.entry(from).or_default();
        self.next_seq.insert(from, seq.next());
        let env = wrap_global(from, seq, Stage::Up, &payload);
        self.cluster.multicast(from, DeliveryMode::Agreed, env)?;
        Ok(seq)
    }

    /// Runs the hierarchy for `d`, pumping the inter-ring relays.
    pub fn run_for(&mut self, d: Duration) {
        let end = self.cluster.now() + d;
        loop {
            let now = self.cluster.now();
            if now >= end {
                return;
            }
            let slice = self.cfg.relay_slice.min(end.since(now));
            let t = now + slice;
            self.cluster.run_until(t);
            self.pump_relays();
        }
    }

    /// Moves freshly delivered envelopes between the rings: leaders lift
    /// UP-stage envelopes from their own group into the top ring; every
    /// persona pushes top-ring envelopes DOWN into its leaf ring.
    fn pump_relays(&mut self) {
        for g in 0..self.cfg.groups {
            let leader = self.leader_of(g);
            let persona = self.persona_of(g);

            // Leaf → top: only the origin group's leader lifts.
            let start = *self.leaf_scanned.get(&leader).unwrap_or(&0);
            let lifts: Vec<Bytes> = self
                .cluster
                .deliveries(leader)
                .iter()
                .skip(start)
                .filter_map(|d| unwrap_global(&d.payload))
                .filter(|(origin, _, stage, _)| *stage == Stage::Up && self.group_of(*origin) == g)
                .map(|(origin, seq, _, inner)| wrap_global(origin, seq, Stage::Up, &inner))
                .collect();
            self.leaf_scanned
                .insert(leader, self.cluster.deliveries(leader).len());
            for env in lifts {
                let _ = self.cluster.multicast(persona, DeliveryMode::Agreed, env);
            }

            // Top → leaf: every persona injects DOWN in top-ring order —
            // which is therefore the global delivery order everywhere.
            let start = *self.top_scanned.get(&persona).unwrap_or(&0);
            let downs: Vec<Bytes> = self
                .cluster
                .deliveries(persona)
                .iter()
                .skip(start)
                .filter_map(|d| unwrap_global(&d.payload))
                .filter(|(_, _, stage, _)| *stage == Stage::Up)
                .map(|(origin, seq, _, inner)| wrap_global(origin, seq, Stage::Down, &inner))
                .collect();
            self.top_scanned
                .insert(persona, self.cluster.deliveries(persona).len());
            for env in downs {
                let _ = self.cluster.multicast(leader, DeliveryMode::Agreed, env);
            }
        }
    }

    /// Global deliveries observed by a leaf member, in delivery order:
    /// `(origin, seq, payload)` of every DOWN-stage envelope.
    pub fn global_deliveries(&self, member: NodeId) -> Vec<(NodeId, OriginSeq, Bytes)> {
        self.cluster
            .deliveries(member)
            .iter()
            .filter_map(|d| unwrap_global(&d.payload))
            .filter(|(_, _, stage, _)| *stage == Stage::Down)
            .map(|(o, s, _, p)| (o, s, p))
            .collect()
    }

    /// Group-communication wake-ups per member, including the top-ring
    /// persona's share for leaders (the leader runs both stacks).
    pub fn task_switches(&self, member: NodeId) -> u64 {
        let mut total = self
            .cluster
            .session(member)
            .map(|s| s.metrics().task_switches)
            .unwrap_or(0);
        let g = self.group_of(member);
        if member == self.leader_of(g) {
            total += self
                .cluster
                .session(self.persona_of(g))
                .map(|s| s.metrics().task_switches)
                .unwrap_or(0);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(groups: u32, k: u32) -> HierCluster {
        HierCluster::new(HierConfig {
            groups,
            group_size: k,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn leaf_rings_form_independently() {
        let mut h = build(3, 3);
        h.run_for(Duration::from_secs(1));
        // Each leaf group is its own converged ring; no cross-merges.
        for g in 0..3 {
            let leader = h.leader_of(g);
            let ring = h.cluster().session(leader).unwrap().ring().clone();
            assert_eq!(ring.len(), 3, "group {g}: {ring:?}");
            for m in ring.iter() {
                assert_eq!(h.group_of(m), g, "member {m} leaked across groups");
            }
        }
        // The top ring contains every persona.
        let top = h.cluster().session(h.persona_of(0)).unwrap().ring().clone();
        assert_eq!(top.len(), 3);
    }

    #[test]
    fn global_multicast_reaches_every_member_in_total_order() {
        let mut h = build(3, 3);
        h.run_for(Duration::from_secs(1));
        // Concurrent sends from different groups.
        for i in 0..6u8 {
            let from = NodeId(u32::from(i) % 9);
            h.multicast_global(from, Bytes::from(vec![i])).unwrap();
        }
        h.run_for(Duration::from_secs(3));
        let reference = h.global_deliveries(NodeId(0));
        assert_eq!(
            reference.len(),
            6,
            "all six messages delivered: {reference:?}"
        );
        for m in h.member_ids() {
            assert_eq!(
                h.global_deliveries(m),
                reference,
                "member {m} disagrees on the global total order"
            );
        }
    }

    #[test]
    fn origin_group_also_delivers_exactly_once() {
        let mut h = build(2, 4);
        h.run_for(Duration::from_secs(1));
        h.multicast_global(NodeId(1), Bytes::from_static(b"once"))
            .unwrap();
        h.run_for(Duration::from_secs(2));
        for m in h.member_ids() {
            let got = h.global_deliveries(m);
            assert_eq!(got.len(), 1, "member {m}: {got:?}");
            assert_eq!(got[0].0, NodeId(1));
        }
    }

    #[test]
    fn non_leader_overhead_tracks_leaf_ring_not_total_size() {
        // A non-leader member's wake-up rate depends on its leaf ring
        // (size K), not on the total member count N = G·K.
        let mut small = build(2, 4); // N = 8
        let mut large = build(8, 4); // N = 32, same K
        small.run_for(Duration::from_secs(2));
        large.run_for(Duration::from_secs(2));
        let probe_small = small.task_switches(NodeId(1)); // non-leader
        let probe_large = large.task_switches(NodeId(1));
        let ratio = probe_large as f64 / probe_small.max(1) as f64;
        assert!(
            (0.6..1.6).contains(&ratio),
            "leaf overhead should be N-independent: small={probe_small} large={probe_large}"
        );
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::hcluster::tests_support::build;

    #[test]
    fn non_leader_crash_heals_leaf_ring_and_global_multicast_continues() {
        let mut h = build(2, 4);
        h.run_for(Duration::from_secs(1));
        // Crash a non-leader member of group 1 (ids 4..8, leader 4).
        h.cluster_mut().crash(NodeId(6));
        h.run_for(Duration::from_secs(2));
        let ring = h.cluster().session(h.leader_of(1)).unwrap().ring().clone();
        assert_eq!(ring.len(), 3, "leaf ring healed: {ring:?}");
        assert!(!ring.contains(NodeId(6)));
        // Global multicast still reaches every live member.
        h.multicast_global(NodeId(1), Bytes::from_static(b"post-crash"))
            .unwrap();
        h.run_for(Duration::from_secs(2));
        for m in h.member_ids() {
            if m == NodeId(6) {
                continue;
            }
            assert!(
                h.global_deliveries(m)
                    .iter()
                    .any(|(_, _, p)| p == &Bytes::from_static(b"post-crash")),
                "member {m} missed the post-crash multicast"
            );
        }
    }
}

#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;

    pub(crate) fn build(groups: u32, k: u32) -> HierCluster {
        HierCluster::new(HierConfig {
            groups,
            group_size: k,
            ..Default::default()
        })
        .unwrap()
    }
}
