//! The global-multicast envelope relayed between rings.

use bytes::Bytes;
use raincore_types::wire::{Reader, WireDecode, WireEncode, Writer};
use raincore_types::{NodeId, OriginSeq};

/// Magic prefix identifying a hierarchical envelope inside a multicast.
pub const MAGIC: &[u8; 4] = b"RCHG";

/// Which relay stage an envelope is in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Travelling up: originator's leaf ring → leader (→ top ring).
    Up,
    /// Travelling down: leader → its leaf ring → members deliver.
    Down,
}

/// Wraps a global multicast payload.
pub fn wrap_global(origin: NodeId, seq: OriginSeq, stage: Stage, payload: &[u8]) -> Bytes {
    let mut w = Writer::with_capacity(payload.len() + 12);
    for &b in MAGIC {
        w.put_u8(b);
    }
    origin.encode(&mut w);
    seq.encode(&mut w);
    w.put_u8(match stage {
        Stage::Up => 0,
        Stage::Down => 1,
    });
    w.put_bytes(payload);
    w.finish()
}

/// Recovers `(origin, seq, stage, payload)`; `None` if the payload is
/// not a hierarchical envelope.
pub fn unwrap_global(payload: &[u8]) -> Option<(NodeId, OriginSeq, Stage, Bytes)> {
    let rest = payload.strip_prefix(&MAGIC[..])?;
    let mut r = Reader::new(rest);
    let origin = NodeId::decode(&mut r).ok()?;
    let seq = OriginSeq::decode(&mut r).ok()?;
    let stage = match r.get_u8().ok()? {
        0 => Stage::Up,
        1 => Stage::Down,
        _ => return None,
    };
    let inner = r.get_bytes().ok()?;
    r.expect_end().ok()?;
    Some((origin, seq, stage, inner))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_both_stages() {
        for stage in [Stage::Up, Stage::Down] {
            let b = wrap_global(NodeId(7), OriginSeq(3), stage, b"data");
            assert_eq!(
                unwrap_global(&b),
                Some((NodeId(7), OriginSeq(3), stage, Bytes::from_static(b"data")))
            );
        }
    }

    #[test]
    fn foreign_and_malformed_rejected() {
        assert_eq!(unwrap_global(b"RCDTxxx"), None);
        assert_eq!(unwrap_global(b""), None);
        // Bad stage byte.
        let mut b = wrap_global(NodeId(1), OriginSeq(0), Stage::Up, b"x").to_vec();
        b[4 + 1 + 1] = 9; // origin(1B varint) + seq(1B varint) then stage
        assert_eq!(unwrap_global(&b), None);
        // Trailing garbage.
        let mut b = wrap_global(NodeId(1), OriginSeq(0), Stage::Up, b"x").to_vec();
        b.push(0);
        assert_eq!(unwrap_global(&b), None);
    }
}
